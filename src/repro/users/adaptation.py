"""Online adaptation of the comfort limit — the paper's user-feedback loop.

The paper's defining claim is that the skin-temperature cap should be
*user-specific*, and it sketches how the limit would be obtained in practice:
start from a population default and adapt as the user reports discomfort (or
its absence).  This module makes that loop a first-class, pluggable component:

* :class:`ComfortAdapter` — the strategy protocol: consume one
  :class:`~repro.api.types.FeedbackEvent`, expose the live ``current_limit_c``;
* :class:`FixedLimit` — the no-op baseline (a static per-profile limit,
  exactly what the reproduction hard-coded before this module);
* :class:`FeedbackStep` — AIMD-style stepping: shift the limit down by a
  large step on discomfort, creep it back up by a small step on comfort,
  with a refractory hold-off (hysteresis) and hard clamp bounds;
* :class:`QuantileTracker` — converge the limit toward the temperature at
  which the user's satisfaction flips, by pulling the estimate toward the
  felt temperature of near-limit reports with asymmetric, decaying gains
  (the quantile parameter weights the "too hot" side against the "fine"
  side, so low quantiles learn conservative limits);
* :class:`UserFeedbackModel` — the satisfaction-driven event generator for
  simulated users: every report period it compares the felt skin temperature
  against the profile's true limit and emits discomfort above it or comfort
  just below it (far-below temperatures elicit no report — users do not
  volunteer "my phone is pleasantly cold");
* :class:`AdaptiveComfortManager` — the thermal-manager wrapper that threads
  the loop through every execution surface: it generates (or receives)
  feedback, lets the adapter update the limit, pushes the live limit into
  the wrapped USTA controller via ``set_skin_limit``, and then defers the
  cap decision to it.  Because it implements the plain
  :class:`~repro.sim.engine.ThermalManager` protocol it runs unchanged under
  the scalar kernel, the process pool and the vectorized population engine.

Simulated users "feel" the *skin sensor reading* rather than the internal
node temperature: it is the only skin signal present on every execution path
(scalar telemetry and vectorized population alike), and its noise doubles as
perception noise.  This is what makes adaptive cells bit-identical across all
three executors.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Optional, Protocol, Tuple, runtime_checkable

from ..api.registry import register_adapter
from ..api.types import FeedbackEvent

__all__ = [
    "ComfortAdapter",
    "FixedLimit",
    "FeedbackStep",
    "QuantileTracker",
    "UserFeedbackModel",
    "AdaptiveComfortManager",
    "WARM_START_TEMPS",
]

#: Internal node temperatures of a device that has been busy for a while —
#: the shared warm-start profile for adaptation experiments (the analysis
#: frontier, the golden sweep scenario, parity tests), so short traces reach
#: comfort-relevant skin temperatures immediately.
WARM_START_TEMPS = {
    "cpu": 48.0,
    "board": 40.0,
    "battery": 37.0,
    "back_cover": 34.5,
    "screen": 33.5,
}


@runtime_checkable
class ComfortAdapter(Protocol):
    """Protocol implemented by comfort-limit adaptation strategies."""

    def observe(self, event: FeedbackEvent) -> float:
        """Consume one feedback event and return the (possibly updated) limit."""
        ...

    def reset(self) -> None:
        """Return to the initial limit before a fresh run."""
        ...

    @property
    def current_limit_c(self) -> float:
        """The live comfort limit (°C)."""
        ...


def _check_bounds(min_limit_c: float, max_limit_c: float, initial_limit_c: float) -> None:
    if not min_limit_c < max_limit_c:
        raise ValueError("min_limit_c must be strictly below max_limit_c")
    if not (25.0 < min_limit_c and max_limit_c < 60.0):
        raise ValueError("clamp bounds must lie in the plausible (25, 60) °C range")
    if not (min_limit_c <= initial_limit_c <= max_limit_c):
        raise ValueError("initial_limit_c must lie within the clamp bounds")


@register_adapter("fixed")
@dataclass
class FixedLimit:
    """The no-op baseline: the limit never moves, whatever the user reports.

    This is exactly the pre-adaptation behaviour (a frozen per-profile
    ``skin_limit_c``), kept as a registered strategy so static and adaptive
    policies differ by one spec field and nothing else.
    """

    initial_limit_c: float = 37.0

    #: Registry/label name (no annotation: class attribute, not a field).
    name = "fixed"

    def __post_init__(self) -> None:
        if not 25.0 < self.initial_limit_c < 60.0:
            raise ValueError("initial_limit_c must be a plausible skin-temperature limit")
        self._limit_c = self.initial_limit_c

    @property
    def current_limit_c(self) -> float:
        return self._limit_c

    def observe(self, event: FeedbackEvent) -> float:
        return self._limit_c

    def snapshot_batch_state(self) -> dict:
        """JSON-able state, symmetric with :meth:`restore_batch_state`."""
        return {"limit_c": self._limit_c}

    def restore_batch_state(self, *, limit_c: float) -> None:
        """Install persisted state (a fixed limit can still be pinned)."""
        self._limit_c = float(limit_c)

    def reset(self) -> None:
        self._limit_c = self.initial_limit_c


@register_adapter("feedback_step")
@dataclass
class FeedbackStep:
    """AIMD stepping with hysteresis: big steps down on discomfort, small creep up.

    Attributes:
        initial_limit_c: starting limit (typically the mis-specified
            population default the loop must correct).
        step_down_c: °C removed from the limit per acted-on discomfort report.
        step_up_c: °C added per acted-on comfort report (keep well below
            ``step_down_c`` so the loop probes upward gently).
        hold_off_s: refractory period after any adjustment; reports inside it
            are ignored (hysteresis — one hot spell is one correction, not a
            correction per report).
        min_limit_c / max_limit_c: hard clamp bounds on the live limit.
    """

    initial_limit_c: float = 37.0
    step_down_c: float = 0.5
    step_up_c: float = 0.1
    hold_off_s: float = 30.0
    min_limit_c: float = 30.0
    max_limit_c: float = 45.0

    #: Registry/label name (no annotation: class attribute, not a field).
    name = "feedback_step"

    def __post_init__(self) -> None:
        _check_bounds(self.min_limit_c, self.max_limit_c, self.initial_limit_c)
        if self.step_down_c <= 0 or self.step_up_c <= 0:
            raise ValueError("step sizes must be positive")
        if self.hold_off_s < 0:
            raise ValueError("hold_off_s must be non-negative")
        self._limit_c = self.initial_limit_c
        self._last_change_s: Optional[float] = None

    @property
    def current_limit_c(self) -> float:
        return self._limit_c

    def observe(self, event: FeedbackEvent) -> float:
        if (
            self._last_change_s is not None
            and event.time_s - self._last_change_s < self.hold_off_s
        ):
            return self._limit_c
        if event.is_discomfort:
            adjusted = max(self.min_limit_c, self._limit_c - self.step_down_c)
        else:
            adjusted = min(self.max_limit_c, self._limit_c + self.step_up_c)
        if adjusted != self._limit_c:
            self._limit_c = adjusted
            self._last_change_s = event.time_s
        return self._limit_c

    def restore_batch_state(
        self, *, limit_c: float, last_change_s: Optional[float]
    ) -> None:
        """Install state accumulated by the vectorized policy plane.

        The SoA engine mirrors this adapter's two state variables in arrays
        and writes them back once at the batch boundary.
        """
        self._limit_c = float(limit_c)
        self._last_change_s = last_change_s

    def snapshot_batch_state(self) -> dict:
        """JSON-able state, symmetric with :meth:`restore_batch_state`.

        This is also the persistence form the fleet
        :class:`~repro.fleet.state.SessionStateStore` writes per user.
        """
        return {"limit_c": self._limit_c, "last_change_s": self._last_change_s}

    def reset(self) -> None:
        self._limit_c = self.initial_limit_c
        self._last_change_s = None


@register_adapter("quantile_tracker")
@dataclass
class QuantileTracker:
    """Track the temperature at which the user's satisfaction flips.

    Feedback events near the current estimate are the informative ones: a
    discomfort report *below* the estimate means the limit is too high and
    pulls it down toward the felt temperature; a comfort report *above* the
    estimate means the limit is too low and pulls it up.  Reports far on the
    expected side of the estimate (comfort well below it, discomfort well
    above it) carry no new information and leave it unchanged, so the
    estimate is pinched toward the flip temperature from both sides.

    The ``quantile`` parameter sets the asymmetry: downward corrections are
    weighted ``1 - quantile`` and upward corrections ``quantile``, so low
    quantiles converge to a conservative (cooler) point of the flip region
    and ``0.5`` splits it.  The per-event gain decays as ``gain_c / (1 +
    decay * n_events)`` (stochastic approximation), which damps jitter from
    noisy feedback as evidence accumulates.

    Reports farther than ``trust_window_c`` from the current estimate are
    normally discarded as outliers.  An ideal reporter rarely produces them
    (its informative reports cluster at the flip temperature, which the
    estimate approaches), but a *contradictory* reporter does — a flipped
    "feels fine" filed at a scorching 44 °C would otherwise yank the
    estimate toward it with full gain.  Rejection is not absolute: after
    ``trust_streak_limit`` consecutive rejections the next far report is
    trusted anyway — a *persistent* stream of far reports is signal, not
    noise (a user whose true limit sits well outside the window would
    otherwise freeze the tracker forever), while sporadic flips stay
    filtered.  The stress suites document the resulting robustness: on the
    standard probe the tracker stays within **0.5 °C** of every user's true
    limit with an ideal or arbitrarily-delayed (≤ 30 s) reporter — including
    users whose limits start far outside the window — and within its **trust
    window (3 °C)** when up to 20 % of reports are contradictory (without
    the filter, single far flips could drag it arbitrarily toward the clamp
    bounds).

    Attributes:
        initial_limit_c: starting estimate.
        quantile: flip-region quantile to converge to, in (0, 1).
        gain_c: initial fraction of the error corrected per event.
        decay: gain decay rate per observed event.
        min_limit_c / max_limit_c: hard clamp bounds on the live limit.
        trust_window_c: outlier rejection radius around the estimate
            (``None`` disables rejection).
        trust_streak_limit: consecutive rejections after which a far report
            is trusted anyway (the escape hatch above).
    """

    initial_limit_c: float = 37.0
    quantile: float = 0.5
    gain_c: float = 0.7
    decay: float = 0.01
    min_limit_c: float = 30.0
    max_limit_c: float = 45.0
    trust_window_c: Optional[float] = 3.0
    trust_streak_limit: int = 8

    #: Registry/label name (no annotation: class attribute, not a field).
    name = "quantile_tracker"

    def __post_init__(self) -> None:
        _check_bounds(self.min_limit_c, self.max_limit_c, self.initial_limit_c)
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if not 0.0 < self.gain_c <= 1.0:
            raise ValueError("gain_c must be in (0, 1]")
        if self.decay < 0:
            raise ValueError("decay must be non-negative")
        if self.trust_window_c is not None and self.trust_window_c <= 0:
            raise ValueError("trust_window_c must be positive (or None to disable)")
        if self.trust_streak_limit < 1:
            raise ValueError("trust_streak_limit must be at least 1")
        self._limit_c = self.initial_limit_c
        self._event_count = 0
        self._rejection_streak = 0

    @property
    def current_limit_c(self) -> float:
        return self._limit_c

    @property
    def event_count(self) -> int:
        """Feedback events consumed since the last reset."""
        return self._event_count

    def observe(self, event: FeedbackEvent) -> float:
        temp = event.skin_temp_c
        if temp is None:
            # Without a felt temperature there is nothing to track toward.
            return self._limit_c
        if self.trust_window_c is not None and abs(temp - self._limit_c) > self.trust_window_c:
            # Outside the trust window: an isolated far report is treated as
            # contradiction noise and ignored — but a persistent streak of
            # them means the flip point genuinely sits far away, so the
            # escape hatch lets every trust_streak_limit-th one through.
            self._rejection_streak += 1
            if self._rejection_streak < self.trust_streak_limit:
                return self._limit_c
        self._rejection_streak = 0
        self._event_count += 1
        gain = self.gain_c / (1.0 + self.decay * self._event_count)
        if event.is_discomfort:
            if temp < self._limit_c:
                self._limit_c += (1.0 - self.quantile) * gain * (temp - self._limit_c)
        else:
            if temp > self._limit_c:
                self._limit_c += self.quantile * gain * (temp - self._limit_c)
        self._limit_c = min(self.max_limit_c, max(self.min_limit_c, self._limit_c))
        return self._limit_c

    def restore_batch_state(
        self, *, limit_c: float, event_count: int, rejection_streak: int
    ) -> None:
        """Install state accumulated by the vectorized policy plane.

        The SoA engine mirrors this adapter's three state variables in
        arrays and writes them back once at the batch boundary.
        """
        self._limit_c = float(limit_c)
        self._event_count = int(event_count)
        self._rejection_streak = int(rejection_streak)

    def snapshot_batch_state(self) -> dict:
        """JSON-able state, symmetric with :meth:`restore_batch_state`.

        This is also the persistence form the fleet
        :class:`~repro.fleet.state.SessionStateStore` writes per user, so a
        returning user's tracker resumes mid-convergence (same gain decay)
        instead of starting over.
        """
        return {
            "limit_c": self._limit_c,
            "event_count": self._event_count,
            "rejection_streak": self._rejection_streak,
        }

    def reset(self) -> None:
        self._limit_c = self.initial_limit_c
        self._event_count = 0
        self._rejection_streak = 0


@dataclass
class UserFeedbackModel:
    """Deterministic satisfaction-driven feedback for a simulated user.

    Every ``report_period_s`` the user compares the felt skin temperature
    against their *true* comfort limit (the quantity the adapter must learn):

    * above the limit → a discomfort report;
    * within ``comfort_band_c`` below the limit → a comfort report ("warm
      but fine" — the informative kind for threshold tracking);
    * cooler than that → silence.

    Real users are messier than that, and two adversarial knobs model the
    mess (both default *off*, leaving the ideal model bit-identical to
    before):

    * ``flip_probability`` — contradictory reports: each generated report's
      verdict is inverted with this probability ("too hot" filed while
      actually comfortable and vice versa), drawn from a seeded generator so
      runs stay reproducible;
    * ``delay_s`` — lagged reports: a report reaches the adapter ``delay_s``
      after the moment it describes, carrying the *stale* felt temperature
      (the user reacts to how the phone felt half a minute ago), delivered
      with a monotonically increasing timestamp.

    The stress suites (``tests/test_properties_adaptation.py``) document the
    tolerance the trackers keep under this adversity: ``quantile_tracker``
    still converges to within **0.5 °C** of the true limit on the standard
    probe with reports delayed up to 30 s, and stays within its **trust
    window (3 °C)** with up to 20 % contradictory reports (vs. 0.5 °C for an
    ideal reporter; typical contradictory-report error is well under 2 °C,
    worst observed ≈2.7 °C).

    Attributes:
        true_limit_c: the user's actual flip temperature (e.g.
            :attr:`~repro.users.population.ThermalComfortProfile.skin_limit_c`).
        report_period_s: minimum time between reports.
        comfort_band_c: width of the "warm but fine" band below the limit in
            which comfort is reported.
        flip_probability: chance each report's verdict is inverted, in [0, 1].
        delay_s: delivery lag between feeling and filing a report (seconds).
        seed: seed of the contradictory-report generator.
    """

    true_limit_c: float
    report_period_s: float = 15.0
    comfort_band_c: float = 3.0
    flip_probability: float = 0.0
    delay_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 25.0 < self.true_limit_c < 60.0:
            raise ValueError("true_limit_c must be a plausible skin-temperature limit")
        if self.report_period_s <= 0:
            raise ValueError("report_period_s must be positive")
        if self.comfort_band_c <= 0:
            raise ValueError("comfort_band_c must be positive")
        if not 0.0 <= self.flip_probability <= 1.0:
            raise ValueError("flip_probability must lie in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        self._last_report_s: Optional[float] = None
        self._rng = random.Random(self.seed)
        self._pending: Deque[Tuple[float, FeedbackEvent]] = deque()

    def observe(self, time_s: float, skin_temp_c: float) -> Optional[FeedbackEvent]:
        """The user's report for this instant, or ``None`` when they say nothing."""
        generated = self._generate(time_s, skin_temp_c)
        if generated is not None and self.delay_s > 0:
            self._pending.append((time_s + self.delay_s, generated))
            generated = None
        if generated is not None:
            return generated
        if self._pending and self._pending[0][0] <= time_s + 1e-9:
            deliver_time, event = self._pending.popleft()
            # Filed now, about how the device felt delay_s ago: the stale
            # temperature is the point; the timestamp stays monotonic.
            return replace(event, time_s=time_s)
        return None

    def _generate(self, time_s: float, skin_temp_c: float) -> Optional[FeedbackEvent]:
        """The ideal model's report for this instant (plus the flip noise)."""
        if (
            self._last_report_s is not None
            and time_s - self._last_report_s < self.report_period_s - 1e-9
        ):
            return None
        if skin_temp_c > self.true_limit_c:
            event = FeedbackEvent.discomfort(time_s, skin_temp_c)
        elif skin_temp_c > self.true_limit_c - self.comfort_band_c:
            event = FeedbackEvent.comfort(time_s, skin_temp_c)
        else:
            return None
        self._last_report_s = time_s
        if self.flip_probability > 0 and self._rng.random() < self.flip_probability:
            flipped = (
                FeedbackEvent.COMFORT if event.is_discomfort else FeedbackEvent.DISCOMFORT
            )
            event = replace(event, kind=flipped)
        return event

    def reset(self) -> None:
        """Forget the report clock, pending reports and noise stream."""
        self._last_report_s = None
        self._rng = random.Random(self.seed)
        self._pending.clear()


@dataclass
class AdaptiveComfortManager:
    """Thermal manager that closes the user-feedback loop around USTA.

    One instance couples an inner manager exposing a live comfort limit
    (:meth:`~repro.core.usta.USTAController.set_skin_limit`) with a
    :class:`ComfortAdapter` and, for simulated users, a
    :class:`UserFeedbackModel`.  On every observation it first lets the
    simulated user report (from the skin sensor reading), applies any report
    to the adapter, pushes the adapter's limit into the inner manager, and
    only then lets the inner manager decide the cap.  External feedback
    (a real user tapping "too hot") arrives through :meth:`apply_feedback` —
    this is what :meth:`~repro.api.session.PolicySession.feed` routes
    ``feedback=`` events into.

    Attributes:
        inner: the wrapped manager (USTA or a compatible subclass).
        adapter: the comfort-limit adaptation strategy.
        feedback: optional simulated-user report generator (``None`` when
            feedback only arrives externally, e.g. in a live service).
    """

    inner: object
    adapter: ComfortAdapter
    feedback: Optional[UserFeedbackModel] = None

    def __post_init__(self) -> None:
        if not hasattr(self.inner, "set_skin_limit"):
            raise TypeError(
                f"{type(self.inner).__name__} does not expose a live comfort limit "
                "(set_skin_limit); adaptive policies need a USTA-style manager"
            )
        self.inner.set_skin_limit(self.adapter.current_limit_c)

    @property
    def name(self) -> str:
        """Result label, e.g. ``"feedback_step+usta"``."""
        adapter_name = getattr(self.adapter, "name", type(self.adapter).__name__)
        inner_name = getattr(self.inner, "name", type(self.inner).__name__)
        return f"{adapter_name}+{inner_name}"

    @property
    def table(self):
        """The inner manager's frequency table (so sessions resolve cap→frequency)."""
        return getattr(self.inner, "table", None)

    @property
    def current_limit_c(self) -> float:
        """The live (adapted) comfort limit."""
        return self.adapter.current_limit_c

    def apply_feedback(self, event: FeedbackEvent) -> float:
        """Consume one feedback event and sync the inner manager's limit."""
        limit = self.adapter.observe(event)
        self.inner.set_skin_limit(limit)
        return limit

    def _ingest_feedback(self, time_s, sensor_readings) -> None:
        """Let the simulated user report on this tick's felt skin temperature."""
        if self.feedback is None:
            return
        felt = sensor_readings.get("skin")
        if felt is not None:
            event = self.feedback.observe(time_s, felt)
            if event is not None:
                self.apply_feedback(event)

    # -- ThermalManager protocol -------------------------------------------------

    def observe(self, time_s, sensor_readings, utilization, frequency_khz):
        """Let the simulated user report, adapt the limit, then decide the cap."""
        self._ingest_feedback(time_s, sensor_readings)
        return self.inner.observe(
            time_s=time_s,
            sensor_readings=sensor_readings,
            utilization=utilization,
            frequency_khz=frequency_khz,
        )

    def reset(self) -> None:
        """Reset the inner manager, the adapter and the feedback clock."""
        self.inner.reset()
        self.adapter.reset()
        if self.feedback is not None:
            self.feedback.reset()
        self.inner.set_skin_limit(self.adapter.current_limit_c)

    # -- batched-session support -------------------------------------------------
    #
    # A SessionPool splits observe() into prediction_due → (pooled
    # predict_batch) → apply_prediction to batch the predictor across
    # sessions.  The wrapper stays faithful under that split: on due ticks
    # the pool hands the telemetry to pre_feed() first (the feedback step
    # observe() would have run), and the scheduling/apply calls forward to
    # the inner controller.

    def pre_feed(self, sample) -> None:
        """Consume one telemetry sample's feedback before a batched prediction."""
        self._ingest_feedback(sample.time_s, sample.sensor_readings)

    def prediction_due(self, time_s) -> bool:
        """Forward the inner controller's prediction schedule."""
        return self.inner.prediction_due(time_s)

    def apply_prediction(self, time_s, prediction):
        """Forward a batch-computed prediction to the inner controller."""
        return self.inner.apply_prediction(time_s, prediction)

    @property
    def predictor(self):
        """The inner controller's predictor (pool batching groups by it)."""
        return self.inner.predictor

    @property
    def predict_screen(self) -> bool:
        """Whether the inner controller wants screen predictions."""
        return self.inner.predict_screen
