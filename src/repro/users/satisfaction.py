"""Satisfaction / rating model for the blind preference study (Figure 5).

The paper's final study asks each participant to hold the phone through two
30-minute Skype video calls — one governed by the baseline ondemand policy and
one by USTA configured to that user's own comfort limit — and then rate each
session from 1 to 5, without knowing which scheme was active.  The reported
outcome: baseline averages 4.0, USTA 4.3; four users see no difference (their
thresholds are high enough that USTA never intervened), four prefer USTA and
two prefer the baseline.

The rating model below converts the two objective session outcomes — thermal
discomfort and perceived slowdown — into a 1–5 rating using each user's
sensitivity weights:

* thermal penalty grows with the fraction of the session spent above the
  user's limit and with how far above the limit the device got;
* performance penalty grows with the relative throughput loss, but only beyond
  a *noticeability floor* (a few percent of slowdown is imperceptible during a
  video call — consistent with the paper's observation that no user noticed
  USTA's frequency reductions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Sequence

from .comfort import ComfortAnalysis
from .population import ThermalComfortProfile

__all__ = ["SessionOutcome", "RatingModel", "PreferenceResult"]

Preference = Literal["usta", "baseline", "no_difference"]


@dataclass(frozen=True)
class SessionOutcome:
    """Objective outcome of one rated session (one scheme, one user)."""

    scheme: str
    comfort: ComfortAnalysis
    delivered_work: float
    demanded_work: float

    @property
    def slowdown(self) -> float:
        """Relative throughput loss in [0, 1] (0 = no work was lost)."""
        if self.demanded_work <= 0:
            return 0.0
        return max(0.0, 1.0 - self.delivered_work / self.demanded_work)


@dataclass
class RatingModel:
    """Maps a session outcome to a 1–5 satisfaction rating.

    Attributes:
        heat_time_weight: rating points lost per unit fraction of the session
            spent over the limit.
        heat_severity_weight: rating points lost per °C of mean exceedance.
        performance_weight: rating points lost per unit of *noticeable*
            slowdown.
        slowdown_noticeability: slowdown below this fraction is imperceptible.
        base_rating: rating of a perfectly cool, perfectly fast session.
        indifference_band: minimum continuous-score difference a user needs to
            state a preference (smaller differences count as "no difference").
    """

    heat_time_weight: float = 0.55
    heat_severity_weight: float = 0.30
    performance_weight: float = 0.8
    slowdown_noticeability: float = 0.05
    base_rating: float = 5.0
    indifference_band: float = 0.25

    def score(self, outcome: SessionOutcome, profile: ThermalComfortProfile) -> float:
        """Continuous 1–5 satisfaction score of one session for one user."""
        time_fraction = outcome.comfort.percent_time_over_limit / 100.0
        thermal_penalty = profile.heat_sensitivity * (
            self.heat_time_weight * time_fraction
            + self.heat_severity_weight * outcome.comfort.mean_exceedance_c
        )
        noticeable = max(0.0, outcome.slowdown - self.slowdown_noticeability)
        performance_penalty = (
            profile.performance_sensitivity * self.performance_weight * noticeable
        )
        return float(min(5.0, max(1.0, self.base_rating - thermal_penalty - performance_penalty)))

    def rate(self, outcome: SessionOutcome, profile: ThermalComfortProfile) -> int:
        """Integer 1–5 rating (the value reported on the study questionnaire)."""
        return int(round(self.score(outcome, profile)))

    def preference(
        self,
        baseline: SessionOutcome,
        usta: SessionOutcome,
        profile: ThermalComfortProfile,
    ) -> "PreferenceResult":
        """Rate both sessions and derive the user's preference."""
        baseline_rating = self.rate(baseline, profile)
        usta_rating = self.rate(usta, profile)
        # The preference question is separate from the 1-5 rating: two sessions
        # can receive the same rounded rating while the user still leans one
        # way (users c and g in the paper prefer the baseline despite equal
        # ratings).  Preference therefore compares the continuous scores with a
        # small indifference band.
        baseline_score = self.score(baseline, profile)
        usta_score = self.score(usta, profile)
        if usta_score > baseline_score + self.indifference_band:
            choice: Preference = "usta"
        elif baseline_score > usta_score + self.indifference_band:
            choice = "baseline"
        else:
            choice = "no_difference"
        return PreferenceResult(
            user_id=profile.user_id,
            baseline_rating=baseline_rating,
            usta_rating=usta_rating,
            preference=choice,
        )


@dataclass(frozen=True)
class PreferenceResult:
    """One row of the Figure 5 study."""

    user_id: str
    baseline_rating: int
    usta_rating: int
    preference: Preference


def summarize_preferences(results: Sequence[PreferenceResult]) -> Dict[str, float]:
    """Aggregate a set of preference results (the numbers quoted in §IV.B)."""
    if not results:
        raise ValueError("no preference results to summarize")
    count = len(results)
    return {
        "mean_baseline_rating": sum(r.baseline_rating for r in results) / count,
        "mean_usta_rating": sum(r.usta_rating for r in results) / count,
        "prefer_usta": float(sum(1 for r in results if r.preference == "usta")),
        "prefer_baseline": float(sum(1 for r in results if r.preference == "baseline")),
        "no_difference": float(sum(1 for r in results if r.preference == "no_difference")),
    }
