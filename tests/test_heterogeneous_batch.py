"""Tests for the heterogeneous structure-of-arrays batch engine.

The contract under test: a *mixed-trace* plan — different benchmarks,
different lengths, adaptive and static cells — runs through one vectorized
batch and produces records bit-identical (and, on disk, byte-identical) to
the serial executor, under both the batch (``run``) and the streaming
(``run_stream`` → :class:`StreamingResultStore`) paths; and the batch
planner's eligibility rules (the ``--explain-batching`` surface) are
structural only — per-member state such as feedback-model seeds never forces
a scalar fallback.
"""

import json

import numpy as np
import pytest

from repro.api.specs import AdapterSpec, ManagerSpec, PolicySpec
from repro.device.platform import DevicePlatform
from repro.governors import ConservativeGovernor, OndemandGovernor
from repro.runtime import (
    BatchRunner,
    ExperimentCell,
    ExperimentPlan,
    PopulationMember,
    SerialExecutor,
    StreamingResultStore,
    VectorizedExecutor,
    batch_ineligibility,
    plan_batches,
    simulate_population_mixed,
)
from repro.core.usta import USTAController
from repro.device.freq_table import nexus4_frequency_table
from repro.ml.linear import LinearRegression
from repro.runtime.vectorized import (
    _columnwise_linear_form,
    manager_vectorization_ineligibility,
)
from repro.sim.engine import Simulator
from repro.sim.results import ColumnarRecordBuffer
from repro.thermal import ThermalSolver, build_nexus4_network
from repro.users.adaptation import (
    WARM_START_TEMPS,
    AdaptiveComfortManager,
    QuantileTracker,
    UserFeedbackModel,
)
from repro.workloads.benchmarks import build_benchmark
from repro.workloads.trace import WorkloadSample, WorkloadTrace


def _toggle_trace(steps: int = 77) -> WorkloadTrace:
    """A trace whose hand contact and charging state flip mid-run."""
    samples = [
        WorkloadSample(
            cpu_demand=0.9 if i % 3 else 0.2,
            touching=(i // 10) % 2 == 0,
            charging=(i // 15) % 2 == 1,
        )
        for i in range(steps)
    ]
    return WorkloadTrace.from_samples("toggles", samples)


def _mixed_plan(linear_predictor) -> ExperimentPlan:
    """≥3 different traces, different lengths, adaptive + static + bare cells."""
    adaptive = PolicySpec(
        manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}),
        adapter=AdapterSpec(
            "feedback_step",
            feedback={"true_limit_c": 34.3, "report_period_s": 9.0},
        ),
    )
    static = PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 33.0}))
    plan = ExperimentPlan()
    plan.add(
        ExperimentCell(
            cell_id="skype/adaptive",
            benchmark="skype",
            duration_s=120.0,
            policy=adaptive,
            predictor=linear_predictor,
            seed=0,
            initial_temps=WARM_START_TEMPS,
        )
    )
    plan.add(
        ExperimentCell(
            cell_id="youtube/usta",
            benchmark="youtube",
            duration_s=90.0,
            policy=static,
            predictor=linear_predictor,
            seed=1,
        )
    )
    plan.add(
        ExperimentCell(
            cell_id="toggles/bare",
            trace=_toggle_trace(),
            governor="conservative",
            seed=2,
        )
    )
    plan.add(
        ExperimentCell(
            cell_id="tester/bare",
            benchmark="antutu_tester",
            duration_s=150.0,
            seed=3,
        )
    )
    return plan


class TestMixedTraceParity:
    def test_batch_run_bit_identical_to_serial(self, linear_predictor):
        plan = _mixed_plan(linear_predictor)
        serial = BatchRunner(executor=SerialExecutor()).run(plan)
        vectorized = BatchRunner(executor=VectorizedExecutor()).run(plan)
        assert len(vectorized) == len(plan)
        for cell in plan:
            expected = serial.get(cell.cell_id).result
            actual = vectorized.get(cell.cell_id).result
            assert actual.governor_name == expected.governor_name
            assert actual.records == expected.records

    def test_whole_plan_is_one_batch(self, linear_predictor):
        plan = _mixed_plan(linear_predictor)
        batch_plan = VectorizedExecutor().batch_plan(list(plan))
        assert batch_plan.batches == [[0, 1, 2, 3]]
        assert batch_plan.scalar == []

    def test_streamed_shards_byte_identical_to_serial(self, tmp_path, linear_predictor):
        plan = _mixed_plan(linear_predictor)

        def cell_lines(directory):
            lines = {}
            for path in sorted(directory.glob("shard-*.jsonl")):
                for line in path.read_text(encoding="utf-8").splitlines():
                    payload = json.loads(line)
                    # Wall time legitimately differs between runs; compare
                    # everything else byte-for-byte.
                    stripped = line[: line.rindex(',"wall_time_s":')]
                    lines[payload["cell"]["cell_id"]] = stripped
            return lines

        serial_store = StreamingResultStore(tmp_path / "serial", max_cells_per_shard=2)
        BatchRunner(executor=SerialExecutor()).run_stream(plan, serial_store)
        serial_store.close()
        vector_store = StreamingResultStore(tmp_path / "vector", max_cells_per_shard=2)
        BatchRunner(executor=VectorizedExecutor()).run_stream(plan, vector_store)
        vector_store.close()

        serial_lines = cell_lines(tmp_path / "serial")
        vector_lines = cell_lines(tmp_path / "vector")
        assert serial_lines.keys() == vector_lines.keys() == {c.cell_id for c in plan}
        for cell_id, line in serial_lines.items():
            assert vector_lines[cell_id] == line

    def test_early_finishers_leave_the_live_set(self):
        # Three very different lengths; each member's record count must match
        # its own trace, and each result must match its own sequential run.
        traces = [
            build_benchmark("skype", seed=0, duration_s=40),
            build_benchmark("youtube", seed=1, duration_s=150),
            build_benchmark("skype", seed=2, duration_s=90),
        ]
        members = [
            PopulationMember(
                platform=DevicePlatform(seed=seed),
                governor=OndemandGovernor(table=DevicePlatform(seed=seed).freq_table),
            )
            for seed in range(3)
        ]
        results = simulate_population_mixed(traces, members)
        for seed, (trace, result) in enumerate(zip(traces, results)):
            assert len(result.records) == len(trace)
            platform = DevicePlatform(seed=seed)
            reference = Simulator(
                platform=platform, governor=OndemandGovernor(table=platform.freq_table)
            ).run(trace)
            assert result.records == reference.records

    def test_mixed_touch_states_within_one_tick(self):
        # One member touching, one not, at the same tick: the solve must
        # partition between the two canonical factorizations and still match
        # the per-member scalar runs bitwise.
        held = WorkloadTrace.constant(
            "held", 60, WorkloadSample(cpu_demand=0.8, touching=True)
        )
        on_table = WorkloadTrace.constant(
            "table", 60, WorkloadSample(cpu_demand=0.8, touching=False)
        )
        members = [
            PopulationMember(
                platform=DevicePlatform(seed=seed),
                governor=OndemandGovernor(table=DevicePlatform(seed=seed).freq_table),
            )
            for seed in range(2)
        ]
        results = simulate_population_mixed([held, on_table], members)
        for seed, trace in enumerate((held, on_table)):
            platform = DevicePlatform(seed=seed)
            reference = Simulator(
                platform=platform, governor=OndemandGovernor(table=platform.freq_table)
            ).run(trace)
            assert results[seed].records == reference.records

    def test_rejects_mismatched_sample_periods(self):
        fast = WorkloadTrace.constant(
            "fast", 10, WorkloadSample(cpu_demand=0.5), sample_period_s=0.5
        )
        slow = WorkloadTrace.constant("slow", 10, WorkloadSample(cpu_demand=0.5))
        members = [
            PopulationMember(platform=DevicePlatform(seed=s), governor=OndemandGovernor())
            for s in range(2)
        ]
        from repro.runtime import VectorizationError

        with pytest.raises(VectorizationError, match="sample period"):
            simulate_population_mixed([fast, slow], members)


class TestAdapterSeedRegression:
    """Feedback-model seeds are per-member state, not structure.

    Adapter-bearing cells whose feedback models differ only by seed (or by
    any other noise knob) must batch together — a structural comparison that
    rejected them would silently push every user of a noisy-feedback sweep
    onto the scalar path.
    """

    def _adaptive_cell(self, cell_id, seed, feedback_seed, linear_predictor):
        policy = PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}))
        adapter = AdapterSpec(
            "quantile_tracker",
            feedback={
                "true_limit_c": 34.3,
                "report_period_s": 9.0,
                "flip_probability": 0.2,
                "seed": feedback_seed,
            },
        )
        return ExperimentCell(
            cell_id=cell_id,
            benchmark="skype",
            duration_s=90.0,
            policy=policy,
            adapter=adapter,
            predictor=linear_predictor,
            seed=seed,
            initial_temps=WARM_START_TEMPS,
        )

    def test_seed_only_feedback_differences_batch_together(self, linear_predictor):
        cells = [
            self._adaptive_cell(f"user{i}", seed=i, feedback_seed=100 + i, linear_predictor=linear_predictor)
            for i in range(3)
        ]
        batch_plan = plan_batches(cells)
        assert batch_plan.batches == [[0, 1, 2]]
        assert batch_plan.scalar == []

    def test_seed_only_feedback_members_simulate_and_match_serial(self, linear_predictor):
        cells = [
            self._adaptive_cell(f"user{i}", seed=i, feedback_seed=100 + i, linear_predictor=linear_predictor)
            for i in range(3)
        ]
        plan = ExperimentPlan(cells)
        serial = BatchRunner(executor=SerialExecutor()).run(plan)
        vectorized = BatchRunner(executor=VectorizedExecutor()).run(plan)
        for cell in plan:
            assert (
                vectorized.get(cell.cell_id).result.records
                == serial.get(cell.cell_id).result.records
            )
        # The whole plan really went through the batch engine, not a fallback:
        # fallback would rebuild cells via run_cell one at a time, which the
        # planner exposes up front.
        assert VectorizedExecutor().batch_plan(cells).batches == [[0, 1, 2]]


class TestBatchPlanner:
    def test_structural_ineligibility_reasons(self):
        trace = build_benchmark("skype", seed=0, duration_s=30)
        eligible = ExperimentCell(cell_id="ok", trace=trace, seed=0)
        custom_platform = ExperimentCell(
            cell_id="custom", trace=trace, platform_factory=DevicePlatform, seed=0
        )
        governor_instance = ExperimentCell(
            cell_id="inst", trace=trace, governor=ConservativeGovernor(), seed=0
        )
        assert batch_ineligibility(eligible) is None
        assert "platform" in batch_ineligibility(custom_platform)
        assert "governor instance" in batch_ineligibility(governor_instance)

        batch_plan = plan_batches([eligible, custom_platform, governor_instance])
        # One eligible cell alone at its sample period: scalar, with a reason.
        assert batch_plan.batches == []
        reasons = dict(batch_plan.scalar)
        assert set(reasons) == {0, 1, 2}
        assert "only batchable cell" in reasons[0]

    def test_sample_period_partition(self):
        slow = build_benchmark("skype", seed=0, duration_s=30)
        fast = WorkloadTrace.constant(
            "fast", 10, WorkloadSample(cpu_demand=0.5), sample_period_s=0.5
        )
        cells = [
            ExperimentCell(cell_id="s0", trace=slow, seed=0),
            ExperimentCell(cell_id="f0", trace=fast, seed=0),
            ExperimentCell(cell_id="s1", trace=slow, seed=1),
            ExperimentCell(cell_id="f1", trace=fast, seed=1),
        ]
        batch_plan = plan_batches(cells)
        assert sorted(map(sorted, batch_plan.batches)) == [[0, 2], [1, 3]]
        assert batch_plan.scalar == []

    def test_max_batch_members_splits_groups(self):
        trace = build_benchmark("skype", seed=0, duration_s=30)
        cells = [
            ExperimentCell(cell_id=f"c{i}", trace=trace, seed=i) for i in range(5)
        ]
        batch_plan = plan_batches(cells, max_batch_members=2)
        assert all(len(batch) <= 2 for batch in batch_plan.batches)
        assert sorted(i for batch in batch_plan.batches for i in batch) == [0, 1, 2, 3, 4]
        with pytest.raises(ValueError, match="at least 2"):
            plan_batches(cells, max_batch_members=1)

    def test_scalar_fallback_reuses_planned_trace(self, monkeypatch):
        # Planning builds the trace to learn its sample period; a singleton
        # fallback must not pay the build a second time inside run_cell.
        calls = {"n": 0}
        original = ExperimentCell.build_trace

        def counting(cell):
            calls["n"] += 1
            return original(cell)

        monkeypatch.setattr(ExperimentCell, "build_trace", counting)
        solo = ExperimentCell(
            cell_id="solo",
            trace=WorkloadTrace.constant(
                "fast", 5, WorkloadSample(cpu_demand=0.3), sample_period_s=0.5
            ),
            seed=0,
        )
        results = list(VectorizedExecutor().execute([solo]))
        assert len(results) == 1 and len(results[0].result.records) == 10
        assert calls["n"] == 1

    def test_default_batch_cap_bounds_live_batches(self):
        trace = WorkloadTrace.constant("tiny", 3, WorkloadSample(cpu_demand=0.1))
        cells = [ExperimentCell(cell_id=f"c{i}", trace=trace, seed=i) for i in range(300)]
        batch_plan = VectorizedExecutor().batch_plan(cells)
        cap = VectorizedExecutor.DEFAULT_MAX_BATCH_MEMBERS
        assert len(batch_plan.batches) == 2
        assert all(len(batch) <= cap for batch in batch_plan.batches)
        assert batch_plan.scalar == []

    def test_describe_names_batches_and_reasons(self):
        trace = build_benchmark("skype", seed=0, duration_s=30)
        cells = [
            ExperimentCell(cell_id="a", trace=trace, seed=0),
            ExperimentCell(cell_id="b", trace=trace, seed=1),
            ExperimentCell(
                cell_id="inst", trace=trace, governor=ConservativeGovernor(), seed=2
            ),
        ]
        text = plan_batches(cells).describe(cells)
        assert "batch 0: 2 cells" in text
        assert "a " in text and "b " in text
        assert "inst" in text and "governor instance" in text


class TestColumnarBuffer:
    def test_records_match_scalar_construction(self):
        from repro.sim.results import StepRecord

        # Columns are step-major: [step, member].
        buf = ColumnarRecordBuffer(2, 3, with_decisions=True)
        buf.frequency_khz[:, 0] = (384000, 486000, 594000)
        buf.frequency_level[:, 0] = (0, 1, 2)
        buf.level_cap[:, 0] = (11, 11, 3)
        buf.utilization[:, 0] = (0.25, 0.5, 1.0)
        buf.demand[:, 0] = (0.2, 0.5, 0.9)
        buf.delivered_work[:, 0] = (0.2, 0.5, 0.4)
        buf.power_w[:, 0] = (1.0, 2.0, 3.0)
        for name in (
            "cpu_temp_c",
            "battery_temp_c",
            "skin_temp_c",
            "screen_temp_c",
            "sensor_cpu_temp_c",
            "sensor_battery_temp_c",
            "sensor_skin_temp_c",
            "sensor_screen_temp_c",
        ):
            getattr(buf, name)[:, 0] = (30.0, 31.5, 33.25)
        buf.usta_active[2, 0] = True
        buf.predicted_skin_temp_c[2, 0] = 34.125
        buf.comfort_limit_c[2, 0] = 36.5
        records = list(buf.iter_records(0, [1.0, 2.0, 3.0], 3))
        assert len(records) == 3
        assert records[2] == StepRecord(
            time_s=3.0,
            frequency_khz=594000,
            frequency_level=2,
            level_cap=3,
            utilization=1.0,
            demand=0.9,
            delivered_work=0.4,
            power_w=3.0,
            cpu_temp_c=33.25,
            battery_temp_c=33.25,
            skin_temp_c=33.25,
            screen_temp_c=33.25,
            sensor_cpu_temp_c=33.25,
            sensor_battery_temp_c=33.25,
            sensor_skin_temp_c=33.25,
            sensor_screen_temp_c=33.25,
            predicted_skin_temp_c=34.125,
            predicted_screen_temp_c=None,
            usta_active=True,
            comfort_limit_c=36.5,
        )
        # Values come back as plain Python scalars, not numpy scalars.
        assert type(records[0].frequency_khz) is int
        assert type(records[0].utilization) is float
        assert records[0].usta_active is False

    def test_decision_columns_absent_without_managers(self):
        buf = ColumnarRecordBuffer(1, 2, with_decisions=False)
        buf.utilization[:, 0] = (0.1, 0.2)
        records = list(buf.iter_records(0, [1.0, 2.0], 2))
        assert records[0].predicted_skin_temp_c is None
        assert records[0].usta_active is False
        assert records[0].comfort_limit_c is None


class TestRaggedStepMany:
    def test_columns_subset_matches_full_solve(self):
        solver = ThermalSolver(build_nexus4_network())
        rng = np.random.default_rng(7)
        temps = np.tile(
            solver.network.temperatures_vector[:, None], (1, 5)
        ) + rng.uniform(0, 3, size=(6, 5))
        power = rng.uniform(0, 4, size=(6, 5))
        full = solver.step_many(1.0, power, temps)
        subset = np.array([0, 2, 4])
        partial = solver.step_many(1.0, power, temps, columns=subset)
        assert partial.shape == (6, 3)
        assert np.array_equal(partial, full[:, subset])


class TestTraceArrays:
    def test_columns_mirror_samples(self):
        trace = _toggle_trace(20)
        arrays = trace.as_arrays()
        assert len(arrays) == 20
        assert arrays.sample_period_s == trace.sample_period_s
        for i, sample in enumerate(trace):
            assert arrays.cpu_demand[i] == sample.cpu_demand
            assert arrays.touching[i] == sample.touching
            assert arrays.charging[i] == sample.charging
            assert arrays.screen_on[i] == sample.screen_on
        # Cached: the same object comes back while the trace is unchanged.
        assert trace.as_arrays() is arrays


class TestResumeIndexSidecar:
    def _populated(self, directory, linear_predictor, max_cells_per_shard=2):
        plan = _mixed_plan(linear_predictor)
        store = StreamingResultStore(directory, max_cells_per_shard=max_cells_per_shard)
        BatchRunner(executor=SerialExecutor()).run_stream(plan, store)
        store.close()
        return plan

    def test_open_via_index_reads_no_early_shard_lines(self, tmp_path, linear_predictor):
        """The acceptance check: resume no longer reads every shard line.

        A mid-store line is damaged *in place* (byte length preserved).  The
        full scan would reject the directory outright; the indexed open never
        reads the line, so the store opens cleanly — and a truncated final
        line is still recovered from the sidecar's offsets alone.
        """
        directory = tmp_path / "s"
        plan = self._populated(directory, linear_predictor)
        shards = sorted(directory.glob("shard-*.jsonl"))
        assert len(shards) >= 2

        # Damage an early shard without changing its size.
        raw = bytearray(shards[0].read_bytes())
        raw[5:15] = b"X" * 10
        shards[0].write_bytes(bytes(raw))
        # And corrupt only the final line with an unterminated crash artifact.
        with open(shards[-1], "a", encoding="utf-8") as fh:
            fh.write('{"cell":{"cell_id":"tester/bare","benchmark"')

        store = StreamingResultStore(directory, max_cells_per_shard=2)
        assert store.resumed_via_index
        assert store.recovered_tail is not None
        assert store.completed_cell_ids == {c.cell_id for c in plan}
        store.close()

        # The in-place damage surfaces only when the damaged line is read.
        from repro.runtime import StoreCorruptionError

        with pytest.raises(StoreCorruptionError, match="read time"):
            list(StreamingResultStore(directory).iter_results())

    def test_truncated_final_line_recovered_on_index_path(self, tmp_path, linear_predictor):
        directory = tmp_path / "s"
        plan = self._populated(directory, linear_predictor)
        shards = sorted(directory.glob("shard-*.jsonl"))
        last = shards[-1]
        # Chop the final committed line in half: the sidecar's last entry now
        # points past EOF, so the index is stale and the full scan recovers.
        data = last.read_bytes()
        last.write_bytes(data[: len(data) // 2])

        store = StreamingResultStore(directory, max_cells_per_shard=2)
        assert not store.resumed_via_index  # index said more than the shard holds
        assert store.recovered_tail is not None
        assert len(store.completed_cell_ids) == len(plan) - 1
        # The full scan rewrote the sidecar; the next open is indexed again.
        store.close()
        reopened = StreamingResultStore(directory, max_cells_per_shard=2)
        assert reopened.resumed_via_index
        assert reopened.completed_cell_ids == store.completed_cell_ids
        reopened.close()

    def test_missing_index_full_scans_then_rebuilds(self, tmp_path, linear_predictor):
        directory = tmp_path / "s"
        plan = self._populated(directory, linear_predictor)
        (directory / "index.jsonl").unlink()
        store = StreamingResultStore(directory, max_cells_per_shard=2)
        assert not store.resumed_via_index
        assert store.completed_cell_ids == {c.cell_id for c in plan}
        assert (directory / "index.jsonl").exists()
        store.close()
        reopened = StreamingResultStore(directory, max_cells_per_shard=2)
        assert reopened.resumed_via_index
        reopened.close()

    def test_stale_by_one_index_self_heals(self, tmp_path, linear_predictor):
        # A crash between the shard flush and the index flush: the last
        # committed cell has a shard line but no sidecar entry.
        directory = tmp_path / "s"
        plan = self._populated(directory, linear_predictor)
        index = directory / "index.jsonl"
        lines = index.read_text(encoding="utf-8").splitlines()
        index.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")

        store = StreamingResultStore(directory, max_cells_per_shard=2)
        assert store.resumed_via_index
        assert store.completed_cell_ids == {c.cell_id for c in plan}
        assert len(index.read_text(encoding="utf-8").splitlines()) == len(plan)
        store.close()

    def test_partial_index_line_truncated_before_appends(self, tmp_path, linear_predictor):
        # Crash mid index write: a partial line at the sidecar tail.  The
        # next open must truncate it off the *file* (not just skip it at
        # parse time) — the tail self-heal and every later end_cell reopen
        # the sidecar in append mode and would fuse onto the fragment,
        # corrupting the line they write.
        directory = tmp_path / "s"
        plan = self._populated(directory, linear_predictor)
        index = directory / "index.jsonl"
        lines = index.read_text(encoding="utf-8").splitlines(keepends=True)
        index.write_text("".join(lines[:-1]) + lines[-1][:20], encoding="utf-8")

        store = StreamingResultStore(directory, max_cells_per_shard=2)
        assert store.resumed_via_index  # dropped entry re-registered from the tail
        assert store.completed_cell_ids == {c.cell_id for c in plan}
        store.close()
        # Every sidecar line parses again — nothing fused onto the fragment.
        healed = index.read_text(encoding="utf-8").splitlines()
        assert len(healed) == len(plan)
        for line in healed:
            json.loads(line)
        reopened = StreamingResultStore(directory, max_cells_per_shard=2)
        assert reopened.resumed_via_index
        assert reopened.completed_cell_ids == {c.cell_id for c in plan}
        reopened.close()

    def test_resume_reruns_only_missing_cells_after_index_recovery(
        self, tmp_path, linear_predictor
    ):
        directory = tmp_path / "s"
        plan = self._populated(directory, linear_predictor)
        batch = BatchRunner(executor=SerialExecutor()).run(plan)
        shards = sorted(directory.glob("shard-*.jsonl"))
        with open(shards[-1], "a", encoding="utf-8") as fh:
            fh.write('{"cell":{"cell_id":"half-written"')

        store = StreamingResultStore(directory, max_cells_per_shard=2)
        assert store.resumed_via_index
        executed = BatchRunner(executor=VectorizedExecutor()).run_stream(
            plan, store, skip=store.completed_cell_ids
        )
        store.close()
        assert executed == 0  # every real cell was already committed
        loaded = StreamingResultStore(directory).load()
        for cell in plan:
            assert loaded.get(cell.cell_id).result.records == batch.get(
                cell.cell_id
            ).result.records


class _DelegatingUSTA(USTAController):
    """A behaviour-identical subclass that nevertheless overrides ``observe``.

    The policy plane must refuse it (override detection is by identity, not
    behaviour) and route it through the scalar per-member loop — which makes
    it the perfect probe for plane/scalar coexistence: parity must hold even
    though only *some* manager rows ride the plane.
    """

    def observe(self, *args, **kwargs):
        return USTAController.observe(self, *args, **kwargs)


def _plane_traces():
    """Three distinct traces of different lengths sharing one sample period."""
    return [
        build_benchmark("skype", seed=0, duration_s=90.0),
        build_benchmark("youtube", seed=1, duration_s=60.0),
        _toggle_trace(70),
        build_benchmark("game", seed=2, duration_s=75.0),
    ]


def _managed_member(
    predictor,
    seed,
    *,
    true_limit_c=35.5,
    predict_screen=False,
    prediction_period_s=1.0,
    flip_probability=0.0,
    delay_s=0.0,
    controller_cls=USTAController,
):
    platform = DevicePlatform(seed=seed)
    manager = AdaptiveComfortManager(
        inner=controller_cls(
            predictor=predictor,
            skin_limit_c=37.0,
            prediction_period_s=prediction_period_s,
            predict_screen=predict_screen,
        ),
        adapter=QuantileTracker(initial_limit_c=37.0),
        feedback=UserFeedbackModel(
            true_limit_c=true_limit_c,
            report_period_s=10.0,
            flip_probability=flip_probability,
            delay_s=delay_s,
            seed=seed,
        ),
    )
    return PopulationMember(
        platform=platform,
        governor=OndemandGovernor(table=platform.freq_table),
        thermal_manager=manager,
    )


def _assert_three_way_parity(traces, make_members):
    """Plane, scalar-manager batch and per-member serial runs agree bitwise.

    ``make_members`` is called once per executor: members are stateful, so
    each arm needs a fresh set.
    """
    plane = simulate_population_mixed(traces, make_members())
    scalar = simulate_population_mixed(
        traces, make_members(), vectorize_managers=False
    )
    serial = [
        Simulator(
            platform=m.platform, governor=m.governor, thermal_manager=m.thermal_manager
        ).run(t)
        for t, m in zip(traces, make_members())
    ]
    for got_plane, got_scalar, got_serial in zip(plane, scalar, serial):
        assert got_plane.records == got_serial.records
        assert got_scalar.records == got_serial.records


class TestPolicyPlaneParity:
    """Bit-parity of the vectorized manager fast path against both fallbacks."""

    def test_managed_mixed_population(self, linear_predictor):
        traces = _plane_traces()
        _assert_three_way_parity(
            traces,
            lambda: [
                _managed_member(
                    linear_predictor, seed=i, true_limit_c=34.5 + (i % 3) * 0.8
                )
                for i in range(len(traces))
            ],
        )

    def test_noisy_feedback_models(self, linear_predictor):
        """Contradictory and delayed reports stay bit-identical on the plane."""
        traces = _plane_traces()
        _assert_three_way_parity(
            traces,
            lambda: [
                _managed_member(
                    linear_predictor,
                    seed=i,
                    true_limit_c=34.0 + i * 0.5,
                    flip_probability=0.25,
                    delay_s=12.0,
                )
                for i in range(len(traces))
            ],
        )

    def test_screen_predictions_on_the_plane(self, linear_predictor):
        traces = _plane_traces()
        _assert_three_way_parity(
            traces,
            lambda: [
                _managed_member(linear_predictor, seed=i, predict_screen=True)
                for i in range(len(traces))
            ],
        )

    def test_mixed_managed_and_unmanaged_members(self, linear_predictor):
        """Bare members and plane members share one batch without interfering."""
        traces = _plane_traces()

        def build():
            members = [
                _managed_member(linear_predictor, seed=i) for i in range(2)
            ]
            for seed in (7, 8):
                platform = DevicePlatform(seed=seed)
                members.append(
                    PopulationMember(
                        platform=platform,
                        governor=OndemandGovernor(table=platform.freq_table),
                        thermal_manager=None,
                    )
                )
            return members

        _assert_three_way_parity(traces, build)

    def test_scalar_fallback_rows_coexist_with_plane_rows(self, linear_predictor):
        """One plan mixing plane-eligible and override-ineligible managers."""
        traces = _plane_traces()

        def build():
            members = [
                _managed_member(linear_predictor, seed=i) for i in range(2)
            ]
            members.append(
                _managed_member(
                    linear_predictor, seed=5, controller_cls=_DelegatingUSTA
                )
            )
            members.append(_managed_member(linear_predictor, seed=6))
            return members

        sample = build()
        assert (
            manager_vectorization_ineligibility(sample[0].thermal_manager) is None
        )
        reason = manager_vectorization_ineligibility(sample[2].thermal_manager)
        assert reason is not None and "observe" in reason
        _assert_three_way_parity(traces, build)

    def test_heterogeneous_prediction_periods(self, linear_predictor):
        """Per-member periods break the uniform due clock; parity must survive."""
        traces = _plane_traces()
        _assert_three_way_parity(
            traces,
            lambda: [
                _managed_member(
                    linear_predictor, seed=i, prediction_period_s=1.0 + i
                )
                for i in range(len(traces))
            ],
        )


class TestManagerEligibility:
    def test_stock_stack_is_eligible(self, linear_predictor):
        member = _managed_member(linear_predictor, seed=0)
        assert manager_vectorization_ineligibility(member.thermal_manager) is None

    def test_bare_usta_is_eligible(self, linear_predictor):
        assert (
            manager_vectorization_ineligibility(
                USTAController(predictor=linear_predictor)
            )
            is None
        )

    def test_override_subclass_is_refused(self, linear_predictor):
        reason = manager_vectorization_ineligibility(
            _DelegatingUSTA(predictor=linear_predictor)
        )
        assert reason is not None and "_DelegatingUSTA" in reason

    def test_custom_adapter_is_refused(self, linear_predictor):
        class _Tracker(QuantileTracker):
            pass

        manager = AdaptiveComfortManager(
            inner=USTAController(predictor=linear_predictor),
            adapter=_Tracker(initial_limit_c=37.0),
        )
        reason = manager_vectorization_ineligibility(manager)
        assert reason is not None and "_Tracker" in reason

    def test_explain_batching_reports_the_plane(self, linear_predictor):
        """The dry-run plan surfaces plane rows and scalar-manager reasons."""
        spec = PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}))
        plan = ExperimentPlan()
        plan.add(
            ExperimentCell(
                cell_id="fast",
                benchmark="skype",
                duration_s=30.0,
                policy=spec,
                predictor=linear_predictor,
            )
        )
        plan.add(
            ExperimentCell(
                cell_id="slow",
                benchmark="youtube",
                duration_s=30.0,
                manager_factory=_DelegatingFactory(linear_predictor),
            )
        )
        batch_plan = plan_batches(list(plan))
        text = batch_plan.describe(list(plan))
        assert "policy plane: 1 of 2 managed cell(s)" in text
        assert "scalar manager fallback" in text
        assert "slow" in text and "observe" in text


class _DelegatingFactory:
    """Picklable manager factory building the override-ineligible subclass."""

    def __init__(self, predictor):
        self.predictor = predictor

    def __call__(self):
        return _DelegatingUSTA(predictor=self.predictor, skin_limit_c=36.0)


class TestLinearSweepInvariance:
    """The order-fixed LinearRegression sweep and its plane fast-path probe."""

    def test_matrix_predict_equals_per_row_bitwise(self, linear_predictor):
        model = linear_predictor.skin_model
        rng = np.random.default_rng(7)
        matrix = rng.uniform(-1.0, 1.0, (257, 4)) * np.exp2(
            rng.integers(-20, 21, (257, 4)).astype(float)
        )
        whole = model.predict(matrix)
        rows = np.array(
            [model.predict(matrix[i : i + 1])[0] for i in range(len(matrix))]
        )
        assert np.array_equal(whole, rows)
        assert LinearRegression.batch_row_invariant

    def test_predict_batch_arrays_exact_keeps_one_call(self, linear_predictor):
        rng = np.random.default_rng(11)
        matrix = np.column_stack(
            [
                rng.uniform(25.0, 60.0, 64),
                rng.uniform(22.0, 58.0, 64),
                rng.uniform(0.0, 1.0, 64),
                rng.choice(
                    nexus4_frequency_table().frequencies_khz, 64
                ).astype(float),
            ]
        )
        exact = linear_predictor.predict_batch_arrays(matrix, exact=True)
        fast = linear_predictor.predict_batch_arrays(matrix, exact=False)
        assert np.array_equal(exact.skin_temp_c, fast.skin_temp_c)
        assert np.array_equal(exact.screen_temp_c, fast.screen_temp_c)

    def test_columnwise_form_accepts_stock_fitted_model(self, linear_predictor):
        form = _columnwise_linear_form(linear_predictor.skin_model)
        assert form is not None
        coef, intercept = form
        assert np.array_equal(coef, linear_predictor.skin_model.coefficients)
        assert intercept == linear_predictor.skin_model.intercept

    def test_columnwise_form_rejects_unfitted_and_foreign_models(self):
        assert _columnwise_linear_form(LinearRegression()) is None
        assert _columnwise_linear_form(object()) is None

    def test_columnwise_form_rejects_non_four_feature_models(self):
        from repro.ml.dataset import Dataset

        rng = np.random.default_rng(3)
        features = rng.uniform(0.0, 1.0, (50, 2))
        data = Dataset(
            features=features,
            target=features @ np.array([1.5, -0.5]) + 0.25,
            feature_names=("a", "b"),
            target_name="y",
        )
        assert _columnwise_linear_form(LinearRegression().fit(data)) is None
