"""Tests for the sharded per-user session state store.

The store hashes users across ``session-state-NNN.json`` shard files and
tracks dirty shards, so a checkpoint rewrites only the shards whose users
actually moved — the incremental half of the PR's resident-serving plane.
Covers: round-trips across shards, dirty-set proportionality (the "1% of
sessions touched rewrites ~1% of shards" acceptance), legacy single-file
migration, and every corruption refusal.
"""

import json
import zlib

import pytest

from repro.api.session import open_session
from repro.api.specs import AdapterSpec, ManagerSpec, PolicySpec
from repro.api.types import FeedbackEvent
from repro.fleet import PolicyService, SessionStateStore
from repro.fleet.state import STATE_VERSION
from repro.users import paper_population

TRACKER_POLICY = PolicySpec(
    manager=ManagerSpec("usta"), adapter=AdapterSpec("quantile_tracker")
)


def _session(linear_predictor):
    return open_session(TRACKER_POLICY, predictor=linear_predictor)


def _nudge(session, time_s: float) -> None:
    """Move the session's durable state (tracker counters + limit)."""
    session.feed_feedback(FeedbackEvent(time_s, "discomfort", 34.2))


class TestShardedRoundTrip:
    def test_users_round_trip_across_shards(self, tmp_path, linear_predictor):
        store = SessionStateStore(tmp_path / "state", n_shards=8)
        session = _session(linear_predictor)
        _nudge(session, 1.0)
        keys = [f"user-{i:03d}" for i in range(40)]
        for key in keys:
            assert store.record(key, session)
        written = store.save()
        assert 1 <= written <= 8
        assert store.last_save_shard_count == written

        reloaded = SessionStateStore(tmp_path / "state", n_shards=8)
        assert len(reloaded) == 40
        assert reloaded.users == sorted(keys)
        for key in keys:
            assert reloaded.state_for(key) == store.state_for(key)

    def test_shard_files_follow_crc32_placement(self, tmp_path, linear_predictor):
        store = SessionStateStore(tmp_path / "state", n_shards=4)
        session = _session(linear_predictor)
        _nudge(session, 1.0)
        store.record("alice", session)
        store.save()
        index = zlib.crc32(b"alice") % 4
        payload = json.loads(store.shard_path(index).read_text(encoding="utf-8"))
        assert payload["version"] == STATE_VERSION
        assert payload["shard"] == index
        assert payload["shards"] == 4
        assert "alice" in payload["users"]

    def test_on_disk_shard_count_wins(self, tmp_path, linear_predictor):
        store = SessionStateStore(tmp_path / "state", n_shards=4)
        session = _session(linear_predictor)
        _nudge(session, 1.0)
        store.record("alice", session)
        store.save()
        reopened = SessionStateStore(tmp_path / "state", n_shards=16)
        assert reopened.n_shards == 4
        assert reopened.users == ["alice"]

    def test_invalid_shard_count_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="n_shards"):
            SessionStateStore(tmp_path / "state", n_shards=0)


class TestDirtyTracking:
    def test_clean_checkpoint_writes_nothing(self, tmp_path, linear_predictor):
        store = SessionStateStore(tmp_path / "state", n_shards=8)
        session = _session(linear_predictor)
        _nudge(session, 1.0)
        store.record("alice", session)
        assert store.save() == 1
        # Recording the identical snapshot again leaves every shard clean.
        store.record("alice", session)
        assert store.dirty_shard_count == 0
        assert store.save() == 0

    def test_one_percent_touch_rewrites_proportional_shards(
        self, tmp_path, linear_predictor
    ):
        """The acceptance bound: touching 1% of sessions must rewrite only a
        proportional subset of shards, never the whole store."""
        store = SessionStateStore(tmp_path / "state")  # default 64 shards
        base = _session(linear_predictor)
        _nudge(base, 1.0)
        moved = _session(linear_predictor)
        _nudge(moved, 1.0)
        keys = [f"user-{i:04d}" for i in range(1_000)]
        for key in keys:
            store.record(key, base)
        first = store.save()
        assert first > 0

        # 1% of the fleet moves; a full checkpoint re-records *everyone*.
        _nudge(moved, 2.0)
        touched = keys[::100]  # 10 users
        assert moved is not base
        for key in keys:
            store.record(key, moved if key in set(touched) else base)
        assert store.dirty_shard_count <= len(touched)
        written = store.save()
        assert 1 <= written <= len(touched)
        assert written < first

    def test_untouched_shard_bytes_do_not_change(self, tmp_path, linear_predictor):
        store = SessionStateStore(tmp_path / "state", n_shards=8)
        base = _session(linear_predictor)
        _nudge(base, 1.0)
        keys = [f"user-{i:03d}" for i in range(64)]
        for key in keys:
            store.record(key, base)
        store.save()
        before = {
            p.name: p.read_bytes() for p in sorted((tmp_path / "state").glob("*.json"))
        }
        moved = _session(linear_predictor)
        _nudge(moved, 1.0)
        _nudge(moved, 2.0)
        store.record(keys[0], moved)
        store.save()
        after = {
            p.name: p.read_bytes() for p in sorted((tmp_path / "state").glob("*.json"))
        }
        hot = store.shard_path(zlib.crc32(keys[0].encode()) % 8).name
        assert before[hot] != after[hot]
        for name in before:
            if name != hot:
                assert before[name] == after[name]


class TestLegacyMigration:
    def _write_legacy(self, directory, users):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "session-state.json").write_text(
            json.dumps({"version": 1, "users": users}), encoding="utf-8"
        )

    def test_legacy_single_file_reads_and_migrates(self, tmp_path):
        users = {f"user-{i}": {"limit_c": 35.0 + i * 0.1} for i in range(6)}
        self._write_legacy(tmp_path / "state", users)
        store = SessionStateStore(tmp_path / "state", n_shards=4)
        assert store.users == sorted(users)
        assert store.state_for("user-3") == {"limit_c": 35.3}
        # Every populated shard is dirty: the first save materialises the
        # sharded layout and retires the legacy file.
        assert store.dirty_shard_count > 0
        store.save()
        assert not (tmp_path / "state" / "session-state.json").exists()
        reloaded = SessionStateStore(tmp_path / "state")
        assert reloaded.n_shards == 4
        assert reloaded.users == sorted(users)

    def test_legacy_version_mismatch_refused(self, tmp_path):
        directory = tmp_path / "state"
        directory.mkdir()
        (directory / "session-state.json").write_text(
            json.dumps({"version": 99, "users": {}}), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="version"):
            SessionStateStore(directory)


class TestShardCorruption:
    def _seed(self, tmp_path, linear_predictor, n_shards=4):
        store = SessionStateStore(tmp_path / "state", n_shards=n_shards)
        session = _session(linear_predictor)
        _nudge(session, 1.0)
        for i in range(16):
            store.record(f"user-{i:02d}", session)
        store.save()
        return tmp_path / "state"

    def _one_shard(self, directory):
        return sorted(directory.glob("session-state-[0-9]*.json"))[0]

    def test_bad_json_shard_refused(self, tmp_path, linear_predictor):
        directory = self._seed(tmp_path, linear_predictor)
        self._one_shard(directory).write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            SessionStateStore(directory)

    def test_shard_version_mismatch_refused(self, tmp_path, linear_predictor):
        directory = self._seed(tmp_path, linear_predictor)
        path = self._one_shard(directory)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["version"] = 99
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            SessionStateStore(directory)

    def test_shard_count_disagreement_refused(self, tmp_path, linear_predictor):
        directory = self._seed(tmp_path, linear_predictor)
        paths = sorted(directory.glob("session-state-[0-9]*.json"))
        assert len(paths) > 1, "need two shards to disagree"
        payload = json.loads(paths[-1].read_text(encoding="utf-8"))
        payload["shards"] = 32
        paths[-1].write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValueError, match="disagrees"):
            SessionStateStore(directory)

    def test_misplaced_user_refused(self, tmp_path, linear_predictor):
        directory = self._seed(tmp_path, linear_predictor)
        path = self._one_shard(directory)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["users"]["definitely-elsewhere-0xZZ"] = {"limit_c": 35.0}
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValueError, match="does not hash"):
            SessionStateStore(directory)


class TestServiceCheckpointIntegration:
    def test_checkpoint_reports_shards_written(self, tmp_path, linear_predictor):
        profile = next(iter(paper_population()))
        service = PolicyService(
            TRACKER_POLICY,
            profiles={profile.user_id: profile},
            predictor=linear_predictor,
            state_store=SessionStateStore(tmp_path / "state", n_shards=8),
        )
        for i in range(8):
            assert service.open(f"s-{i}", profile.user_id)["ok"]
        first = service.checkpoint()
        assert first["ok"] and first["recorded"] == 8
        assert first["shards_written"] >= 1
        stats = service.stats()
        assert stats["state_shards"] == 8
        assert stats["state_dirty_shards"] == 0
        assert stats["state_shards_written"] == first["shards_written"]
        # Nothing moved since: a second checkpoint writes nothing.
        second = service.checkpoint()
        assert second["recorded"] == 8
        assert second["shards_written"] == 0
