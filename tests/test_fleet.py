"""Tests for the fleet coordinator (distributed sharded sweep executor).

The contract: a fleet run over N worker processes — including one whose
worker is SIGKILLed mid-run — produces a merged, indexed destination store
byte-identical to a single-process streaming run of the same plan, resumes
from its own output, and harvests whatever a crashed previous coordinator's
workers left on disk instead of re-executing it.
"""

import pytest

from repro.api.specs import GovernorSpec, ManagerSpec, PolicySpec
from repro.fleet import FleetCoordinator, FleetError, stores_byte_identical
from repro.runtime import (
    BatchRunner,
    ExperimentCell,
    ExperimentPlan,
    StreamingResultStore,
)
from repro.workloads.benchmarks import build_benchmark


def _mini_plan(linear_predictor, n_reps=3):
    """Six small mixed cells: a bare governor plus static-USTA users."""
    trace = build_benchmark("skype", seed=3, duration_s=40.0)
    plan = ExperimentPlan()
    for rep in range(n_reps):
        plan.add(
            ExperimentCell(
                cell_id=f"base/r{rep}",
                trace=trace,
                policy=PolicySpec(governor=GovernorSpec("ondemand")),
                seed=rep,
                metadata={"user_id": "base", "rep": rep},
            )
        )
        plan.add(
            ExperimentCell(
                cell_id=f"u1/r{rep}",
                trace=trace,
                policy=PolicySpec(
                    manager=ManagerSpec("usta", params={"skin_limit_c": 33.0})
                ),
                predictor=linear_predictor,
                seed=rep,
                metadata={"user_id": "u1", "rep": rep},
            )
        )
    return plan


def _reference_store(plan, directory):
    store = StreamingResultStore(directory)
    BatchRunner.for_jobs(None).run_stream(plan, store)
    store.close()
    return directory


class TestFleetCoordinator:
    def test_fleet_matches_single_process_and_resumes(self, tmp_path, linear_predictor):
        plan = _mini_plan(linear_predictor)
        fleet_dir = tmp_path / "fleet"
        events = []
        report = FleetCoordinator(
            plan, fleet_dir, workers=2, on_event=lambda e, info: events.append(e)
        ).run()

        assert report.n_cells == len(plan)
        assert report.executed == len(plan)
        assert report.resumed == 0
        assert report.workers_spawned == 2
        assert report.worker_deaths == 0
        assert sorted(report.executed_ids) == sorted(c.cell_id for c in plan)
        assert report.merge is not None and report.merge.n_cells == len(plan)
        assert {"spawn", "hello", "assign", "unit_done", "merge"} <= set(events)
        # Worker scratch is compacted away; the destination is a clean store.
        assert not (fleet_dir / "workers").exists()

        ref_dir = _reference_store(plan, tmp_path / "ref")
        assert stores_byte_identical(fleet_dir, ref_dir) is None
        merged = StreamingResultStore(fleet_dir)
        assert merged.resumed_via_index
        assert merged.completed_cell_ids == {c.cell_id for c in plan}
        merged.close()

        # A second run without --resume must refuse to clobber the store ...
        with pytest.raises(FleetError, match="--resume"):
            FleetCoordinator(plan, fleet_dir, workers=2).run()
        # ... and with resume everything is answered from disk: no workers.
        resumed = FleetCoordinator(plan, fleet_dir, workers=2).run(resume=True)
        assert resumed.executed == 0
        assert resumed.resumed == len(plan)
        assert resumed.workers_spawned == 0
        assert stores_byte_identical(fleet_dir, ref_dir) is None

    def test_killed_worker_is_reassigned(self, tmp_path, linear_predictor):
        """SIGKILL one worker mid-run: the sweep still completes and the
        merged store is byte-identical to the single-process run."""
        plan = _mini_plan(linear_predictor)
        fleet_dir = tmp_path / "fleet"
        state = {"killed": None}

        def hook(event, info):
            if event == "assign" and state["killed"] is None and info["unit"] >= 2:
                victims = [
                    wid
                    for wid in coordinator.live_worker_ids()
                    if wid != info["worker_id"]
                ]
                if victims:
                    coordinator.kill_worker(victims[0])
                    state["killed"] = victims[0]

        coordinator = FleetCoordinator(
            plan, fleet_dir, workers=2, unit_size=1, on_event=hook
        )
        report = coordinator.run()

        assert state["killed"] is not None
        assert report.worker_deaths >= 1
        assert report.executed == len(plan)
        ref_dir = _reference_store(plan, tmp_path / "ref")
        assert stores_byte_identical(fleet_dir, ref_dir) is None

    def test_crashed_coordinator_worker_dirs_are_harvested(
        self, tmp_path, linear_predictor
    ):
        """Cells a dead coordinator's workers committed are resumed from the
        leftover ``workers/`` directories, not re-executed."""
        plan = _mini_plan(linear_predictor)
        cells = list(plan)
        partial = ExperimentPlan()
        for cell in cells[:2]:
            partial.add(cell)

        fleet_dir = tmp_path / "fleet"
        leftover = fleet_dir / "workers" / "worker-00"
        _reference_store(partial, leftover)

        report = FleetCoordinator(plan, fleet_dir, workers=2).run(resume=True)
        assert report.resumed == 2
        assert report.executed == len(plan) - 2
        assert {cells[0].cell_id, cells[1].cell_id}.isdisjoint(report.executed_ids)
        assert not (fleet_dir / "workers").exists()
        ref_dir = _reference_store(plan, tmp_path / "ref")
        assert stores_byte_identical(fleet_dir, ref_dir) is None

    def test_constructor_validation(self, tmp_path, linear_predictor):
        plan = _mini_plan(linear_predictor, n_reps=1)
        with pytest.raises(ValueError, match="workers"):
            FleetCoordinator(plan, tmp_path / "x", workers=0)
        with pytest.raises(ValueError, match="unit_size"):
            FleetCoordinator(plan, tmp_path / "x", workers=1, unit_size=0)
