"""Tests for ResultStore JSONL persistence and the opt-in approx solve."""

import numpy as np
import pytest

from repro.api.specs import GovernorSpec, ManagerSpec, PolicySpec
from repro.runtime import (
    BatchRunner,
    ExperimentCell,
    ExperimentPlan,
    ProcessPoolCellExecutor,
    ResultStore,
    SerialExecutor,
    VectorizedExecutor,
)
from repro.workloads.benchmarks import build_benchmark


def _small_store(trace, linear_predictor):
    plan = ExperimentPlan()
    plan.add(
        ExperimentCell(
            cell_id="baseline",
            trace=trace,
            policy=PolicySpec(governor=GovernorSpec("ondemand")),
            seed=2,
            metadata={"scheme": "baseline", "seed": 2},
        )
    )
    plan.add(
        ExperimentCell(
            cell_id="usta",
            trace=trace,
            policy=PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 32.0})),
            predictor=linear_predictor,
            seed=2,
            metadata={"scheme": "usta", "seed": 2},
        )
    )
    return BatchRunner(executor=SerialExecutor()).run(plan)


class TestResultStorePersistence:
    @pytest.fixture()
    def trace(self):
        return build_benchmark("skype", seed=2, duration_s=120)

    def test_save_load_round_trip_is_exact(self, tmp_path, trace, linear_predictor):
        store = _small_store(trace, linear_predictor)
        path = tmp_path / "sweep.jsonl"
        assert store.save(path) == 2

        loaded = ResultStore.load(path)
        assert len(loaded) == len(store)
        for original, restored in zip(store, loaded):
            assert restored.cell.cell_id == original.cell.cell_id
            assert dict(restored.cell.metadata) == dict(original.cell.metadata)
            assert restored.cell.seed == original.cell.seed
            assert restored.result.workload_name == original.result.workload_name
            assert restored.result.governor_name == original.result.governor_name
            assert restored.result.dt_s == original.result.dt_s
            # Bit-exact: JSON floats round-trip through repr.
            assert restored.result.records == original.result.records
        assert loaded.summary_rows() == store.summary_rows()

    def test_loaded_store_supports_lookups(self, tmp_path, trace, linear_predictor):
        store = _small_store(trace, linear_predictor)
        path = tmp_path / "sweep.jsonl"
        store.save(path)
        loaded = ResultStore.load(path)
        assert loaded.one(scheme="usta").cell.cell_id == "usta"
        assert len(loaded.select(seed=2)) == 2
        assert loaded.result_of("baseline").max_skin_temp_c == store.result_of(
            "baseline"
        ).max_skin_temp_c

    def test_policy_spec_survives_persistence(self, tmp_path, trace, linear_predictor):
        store = _small_store(trace, linear_predictor)
        path = tmp_path / "sweep.jsonl"
        store.save(path)
        loaded = ResultStore.load(path)
        assert loaded.get("usta").cell.policy == store.get("usta").cell.policy
        assert loaded.get("baseline").cell.policy.manager is None

    def test_saved_governor_field_reflects_policy_spec(self, tmp_path, linear_predictor):
        import json

        trace = build_benchmark("skype", seed=2, duration_s=30)
        plan = ExperimentPlan()
        plan.add(
            ExperimentCell(
                cell_id="cons",
                trace=trace,
                policy=PolicySpec(governor=GovernorSpec("conservative")),
                seed=2,
            )
        )
        store = BatchRunner(executor=SerialExecutor()).run(plan)
        path = tmp_path / "one.jsonl"
        store.save(path)
        line = json.loads(path.read_text().splitlines()[0])
        # The cell's unused `governor` dataclass default must not leak out.
        assert line["cell"]["governor"] == "conservative"

    def test_loaded_trace_cells_refuse_reexecution(self, tmp_path, trace, linear_predictor):
        store = _small_store(trace, linear_predictor)
        path = tmp_path / "sweep.jsonl"
        store.save(path)
        loaded = ResultStore.load(path)
        cell = loaded.get("baseline").cell
        assert cell.detached_trace
        with pytest.raises(ValueError, match="cannot be re-executed"):
            cell.build_trace()

    def test_loaded_benchmark_cells_reexecute_bit_identically(self, tmp_path):
        from repro.runtime import run_cell

        plan = ExperimentPlan()
        plan.add(
            ExperimentCell(
                cell_id="bench",
                benchmark="youtube",
                duration_s=60.0,
                policy=PolicySpec(governor=GovernorSpec("ondemand")),
                seed=7,
            )
        )
        store = BatchRunner(executor=SerialExecutor()).run(plan)
        path = tmp_path / "bench.jsonl"
        store.save(path)
        loaded_cell = ResultStore.load(path).get("bench").cell
        assert not loaded_cell.detached_trace
        rerun = run_cell(loaded_cell)
        assert rerun.result.records == store.get("bench").result.records

    def test_unknown_record_field_rejected(self, tmp_path, trace, linear_predictor):
        store = _small_store(trace, linear_predictor)
        path = tmp_path / "sweep.jsonl"
        store.save(path)
        text = path.read_text()
        path.write_text(text.replace('"time_s"', '"time_warp"'))
        with pytest.raises((ValueError, TypeError)):
            ResultStore.load(path)


class TestApproxSolve:
    def _population_plan(self, trace, linear_predictor):
        plan = ExperimentPlan()
        for index, limit in enumerate((31.0, 32.0, 33.0, 36.0)):
            plan.add(
                ExperimentCell(
                    cell_id=f"user{index}",
                    trace=trace,
                    policy=PolicySpec(
                        manager=ManagerSpec("usta", params={"skin_limit_c": limit})
                    ),
                    predictor=linear_predictor,
                    seed=4,
                )
            )
        return plan

    def test_blocked_solve_stays_within_tolerance(self, linear_predictor):
        trace = build_benchmark("skype", seed=4, duration_s=240)
        plan = self._population_plan(trace, linear_predictor)
        exact = BatchRunner(executor=VectorizedExecutor(exact=True)).run(plan)
        approx = BatchRunner(executor=VectorizedExecutor(exact=False)).run(plan)
        for entry_exact, entry_approx in zip(exact, approx):
            e, a = entry_exact.result, entry_approx.result
            assert np.allclose(a.skin_temps_c(), e.skin_temps_c(), atol=5e-2)
            assert np.allclose(a.cpu_temps_c(), e.cpu_temps_c(), atol=5e-2)
            assert a.max_skin_temp_c == pytest.approx(e.max_skin_temp_c, abs=5e-2)
            assert a.average_frequency_ghz == pytest.approx(e.average_frequency_ghz, abs=0.05)

    def test_for_jobs_wires_approx_flag(self):
        runner = BatchRunner.for_jobs(None, approx_solve=True)
        assert isinstance(runner.executor, VectorizedExecutor)
        assert runner.executor.exact is False
        default = BatchRunner.for_jobs(None)
        assert default.executor.exact is True
        pooled = BatchRunner.for_jobs(4, approx_solve=True)
        assert isinstance(pooled.executor, ProcessPoolCellExecutor)
