"""Tests for the comfort-limit adaptation loop (the paper's user feedback).

Covers the tentpole end to end: adapter strategies and their registry, the
satisfaction-driven feedback model, the live limit inside USTA, the adaptive
manager under all three executors (bit-identical records), and the analysis
layer's convergence/frontier reports — including the acceptance criterion
that :class:`QuantileTracker` lands within 0.5 °C of every simulated user's
true limit on the default population.
"""

import pytest

from repro.analysis.adaptation import (
    WARM_START_TEMPS,
    adaptation_trajectories,
    comfort_performance_frontier,
    limit_probe_temperatures,
    render_adaptation,
    render_frontier,
)
from repro.api.registry import ADAPTERS
from repro.api.specs import AdapterSpec, ManagerSpec, PolicySpec, SpecError
from repro.api.types import FeedbackEvent
from repro.core.usta import USTAController
from repro.runtime import BatchRunner, ExperimentCell, ExperimentPlan, ResultStore
from repro.runtime.executors import (
    ProcessPoolCellExecutor,
    SerialExecutor,
    VectorizedExecutor,
)
from repro.users.adaptation import (
    AdaptiveComfortManager,
    FeedbackStep,
    FixedLimit,
    QuantileTracker,
    UserFeedbackModel,
)
from repro.users.population import paper_population
from repro.workloads.benchmarks import build_benchmark


class TestAdapterStrategies:
    def test_registry_has_the_three_strategies(self):
        assert {"fixed", "feedback_step", "quantile_tracker"} <= set(ADAPTERS.names())

    def test_feedback_step_steps_down_with_hold_off(self):
        adapter = FeedbackStep(initial_limit_c=37.0, step_down_c=0.5, hold_off_s=15.0)
        assert adapter.observe(FeedbackEvent.discomfort(10.0, 38.0)) == 36.5
        # Inside the hold-off the repeated complaint is ignored (hysteresis).
        assert adapter.observe(FeedbackEvent.discomfort(12.0, 38.0)) == 36.5
        assert adapter.observe(FeedbackEvent.discomfort(30.0, 38.0)) == 36.0

    def test_feedback_step_creeps_up_and_clamps(self):
        adapter = FeedbackStep(
            initial_limit_c=37.0, step_up_c=0.1, hold_off_s=0.0, max_limit_c=37.2
        )
        adapter.observe(FeedbackEvent.comfort(1.0, 35.0))
        adapter.observe(FeedbackEvent.comfort(2.0, 35.0))
        adapter.observe(FeedbackEvent.comfort(3.0, 35.0))
        assert adapter.current_limit_c == pytest.approx(37.2)

    def test_quantile_tracker_pinches_toward_the_flip_point(self):
        adapter = QuantileTracker(initial_limit_c=37.0)
        # Complaints at 34.5 pull the estimate down toward them...
        for t in range(40):
            adapter.observe(FeedbackEvent.discomfort(float(t), 34.5))
        assert adapter.current_limit_c == pytest.approx(34.5, abs=0.2)
        # ...and "fine" reports at 36 pull it back up.
        for t in range(40, 120):
            adapter.observe(FeedbackEvent.comfort(float(t), 36.0))
        assert adapter.current_limit_c == pytest.approx(36.0, abs=0.3)

    def test_quantile_tracker_ignores_temperatureless_events(self):
        adapter = QuantileTracker(initial_limit_c=37.0)
        adapter.observe(FeedbackEvent.discomfort(1.0))
        assert adapter.current_limit_c == 37.0
        assert adapter.event_count == 0

    def test_reset_restores_the_initial_limit(self):
        for adapter in (
            FixedLimit(36.0),
            FeedbackStep(initial_limit_c=36.0, hold_off_s=0.0),
            QuantileTracker(initial_limit_c=36.0),
        ):
            adapter.observe(FeedbackEvent.discomfort(5.0, 35.0))
            adapter.reset()
            assert adapter.current_limit_c == 36.0

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError, match="strictly below"):
            FeedbackStep(min_limit_c=40.0, max_limit_c=35.0, initial_limit_c=37.0)
        with pytest.raises(ValueError, match="within the clamp bounds"):
            QuantileTracker(initial_limit_c=50.0, min_limit_c=30.0, max_limit_c=45.0)
        with pytest.raises(ValueError, match="quantile"):
            QuantileTracker(quantile=1.5)
        with pytest.raises(ValueError, match="feedback kind"):
            FeedbackEvent(time_s=0.0, kind="angry")


class TestUserFeedbackModel:
    def test_reports_follow_the_satisfaction_bands(self):
        model = UserFeedbackModel(true_limit_c=36.0, report_period_s=10.0, comfort_band_c=3.0)
        assert model.observe(10.0, 37.0).is_discomfort
        assert not model.observe(20.0, 34.0).is_discomfort
        assert model.observe(30.0, 30.0) is None  # far below: user says nothing

    def test_report_period_throttles_reports(self):
        model = UserFeedbackModel(true_limit_c=36.0, report_period_s=10.0)
        assert model.observe(10.0, 37.0) is not None
        assert model.observe(15.0, 39.0) is None
        assert model.observe(20.0, 39.0) is not None
        model.reset()
        assert model.observe(1.0, 39.0) is not None


class TestAdversarialFeedbackModels:
    """The noisy/delayed reporter variants (contradictory and lagged reports)."""

    def test_defaults_leave_the_ideal_model_unchanged(self):
        """flip_probability=0 / delay_s=0 reproduce the ideal reporter exactly."""
        ideal = UserFeedbackModel(true_limit_c=36.0, report_period_s=10.0)
        explicit = UserFeedbackModel(
            true_limit_c=36.0, report_period_s=10.0, flip_probability=0.0, delay_s=0.0
        )
        temps = [30.0, 37.0, 34.0, 39.0, 35.5, 31.0, 38.0]
        for index, temp in enumerate(temps):
            time_s = 10.0 * (index + 1)
            assert ideal.observe(time_s, temp) == explicit.observe(time_s, temp)

    def test_flip_probability_one_inverts_every_report(self):
        model = UserFeedbackModel(true_limit_c=36.0, report_period_s=10.0, flip_probability=1.0)
        hot = model.observe(10.0, 39.0)  # truly uncomfortable ...
        assert not hot.is_discomfort  # ... reported as fine
        fine = model.observe(20.0, 34.5)  # truly fine ...
        assert fine.is_discomfort  # ... reported as too hot
        assert fine.skin_temp_c == 34.5  # the felt temperature is untouched

    def test_flip_noise_is_seeded_and_reproducible(self):
        def kinds(seed):
            model = UserFeedbackModel(
                true_limit_c=36.0, report_period_s=5.0, flip_probability=0.5, seed=seed
            )
            return [model.observe(5.0 * (i + 1), 37.0).kind for i in range(40)]

        assert kinds(1) == kinds(1)
        assert kinds(1) != kinds(2)
        model = UserFeedbackModel(
            true_limit_c=36.0, report_period_s=5.0, flip_probability=0.5, seed=1
        )
        first = [model.observe(5.0 * (i + 1), 37.0).kind for i in range(40)]
        model.reset()
        replay = [model.observe(5.0 * (i + 1), 37.0).kind for i in range(40)]
        assert replay == first  # reset rewinds the noise stream too

    def test_delayed_reports_carry_the_stale_temperature(self):
        model = UserFeedbackModel(true_limit_c=36.0, report_period_s=10.0, delay_s=7.0)
        assert model.observe(10.0, 39.0) is None  # felt now, filed later
        assert model.observe(12.0, 30.0) is None  # not due yet
        delivered = model.observe(17.0, 30.0)  # due at 10 + 7
        assert delivered is not None and delivered.is_discomfort
        assert delivered.skin_temp_c == 39.0  # what the user *felt*, not 30.0
        assert delivered.time_s == 17.0  # filed now: timestamps stay monotonic

    def test_reset_clears_pending_delayed_reports(self):
        model = UserFeedbackModel(true_limit_c=36.0, report_period_s=10.0, delay_s=5.0)
        assert model.observe(10.0, 39.0) is None
        model.reset()
        assert model.observe(16.0, 30.0) is None  # the pending report is gone

    def test_invalid_adversarial_parameters_are_rejected(self):
        with pytest.raises(ValueError, match="flip_probability"):
            UserFeedbackModel(true_limit_c=36.0, flip_probability=1.5)
        with pytest.raises(ValueError, match="delay_s"):
            UserFeedbackModel(true_limit_c=36.0, delay_s=-1.0)

    def test_adapter_spec_accepts_the_adversarial_feedback_keys(self):
        from repro.api.specs import AdapterSpec

        spec = AdapterSpec(
            "quantile_tracker",
            feedback={
                "true_limit_c": 36.0,
                "flip_probability": 0.1,
                "delay_s": 12.0,
                "seed": 3,
            },
        )
        model = spec.build_feedback()
        assert model.flip_probability == 0.1
        assert model.delay_s == 12.0
        restored = AdapterSpec.from_spec(spec.to_spec())
        assert restored == spec


class TestLiveLimit:
    def test_usta_cap_reads_the_live_limit(self, linear_predictor):
        # linear_predictor: skin ≈ cpu − 5 °C.
        usta = USTAController(predictor=linear_predictor, skin_limit_c=37.0)
        readings = {"cpu": 38.0, "battery": 36.0}
        far = usta.observe(time_s=1.0, sensor_readings=readings, utilization=0.5,
                           frequency_khz=1_512_000.0)
        assert far.level_cap is None
        assert far.comfort_limit_c == 37.0
        # Lower the live limit to just above the prediction: USTA now throttles.
        usta.set_skin_limit(33.4)
        near = usta.observe(time_s=4.0, sensor_readings=readings, utilization=0.5,
                            frequency_khz=1_512_000.0)
        assert near.level_cap is not None
        assert near.comfort_limit_c == 33.4
        # The configured limit is untouched and reset returns to it.
        assert usta.skin_limit_c == 37.0
        usta.reset()
        assert usta.current_skin_limit_c == 37.0

    def test_set_skin_limit_rejects_implausible_values(self, linear_predictor):
        usta = USTAController(predictor=linear_predictor)
        with pytest.raises(ValueError):
            usta.set_skin_limit(10.0)

    def test_adaptive_manager_requires_a_live_limit_inner(self):
        class NoKnob:
            def observe(self, **kwargs):  # pragma: no cover - never reached
                raise AssertionError

            def reset(self):  # pragma: no cover - never reached
                raise AssertionError

        with pytest.raises(TypeError, match="set_skin_limit"):
            AdaptiveComfortManager(inner=NoKnob(), adapter=FixedLimit(37.0))

    def test_adaptive_manager_closes_the_loop(self, linear_predictor):
        manager = AdaptiveComfortManager(
            inner=USTAController(predictor=linear_predictor, skin_limit_c=37.0),
            adapter=FeedbackStep(initial_limit_c=37.0, step_down_c=1.0, hold_off_s=0.0),
            feedback=UserFeedbackModel(true_limit_c=33.0, report_period_s=3.0),
        )
        readings = {"cpu": 39.0, "battery": 37.0, "skin": 34.0}
        for t in (3.0, 6.0, 9.0):
            decision = manager.observe(
                time_s=t, sensor_readings=readings, utilization=0.6,
                frequency_khz=1_512_000.0,
            )
        # Three discomfort reports at 34 °C stepped the limit 37 → 34; the
        # prediction (cpu − 5 = 34) is now over the limit → minimum level.
        assert manager.current_limit_c == pytest.approx(34.0)
        assert decision.comfort_limit_c == pytest.approx(34.0)
        assert decision.level_cap == 0
        assert "feedback" in manager.name.lower() or "+" in manager.name
        manager.reset()
        assert manager.current_limit_c == 37.0


def _adaptive_plan(predictor, trace, adapter_name="feedback_step"):
    population = paper_population()
    base = PolicySpec(
        manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}),
        adapter=AdapterSpec(adapter_name, feedback={"report_period_s": 9.0}),
    )
    plan = ExperimentPlan()
    for user_id in ("b", "f", "g"):
        plan.add(
            ExperimentCell(
                cell_id=user_id,
                trace=trace,
                policy=base.for_user(population[user_id]),
                predictor=predictor,
                seed=0,
                initial_temps=WARM_START_TEMPS,
                metadata={"user_id": user_id},
            )
        )
    return plan


class TestAdaptiveExecutorParity:
    """`sweep --adapter feedback_step` must be bit-identical on every executor."""

    @pytest.fixture(scope="class")
    def stores(self, linear_predictor):
        trace = build_benchmark("skype", seed=0, duration_s=150)
        results = {}
        for name, executor in (
            ("serial", SerialExecutor()),
            ("vectorized", VectorizedExecutor()),
            ("process-pool", ProcessPoolCellExecutor(max_workers=2)),
        ):
            plan = _adaptive_plan(linear_predictor, trace)
            results[name] = BatchRunner(executor=executor).run(plan)
        return results

    def test_records_are_bit_identical_across_executors(self, stores):
        reference = stores["serial"]
        for name in ("vectorized", "process-pool"):
            for user_id in ("b", "f", "g"):
                assert (
                    stores[name].result_of(user_id).records
                    == reference.result_of(user_id).records
                ), f"{name} diverged for user {user_id}"

    def test_low_limit_users_actually_adapted(self, stores):
        for user_id in ("b", "f"):
            records = stores["serial"].result_of(user_id).records
            limits = {r.comfort_limit_c for r in records}
            assert len(limits) > 1, "the feedback loop never moved the limit"
            assert min(limits) < 37.0

    def test_store_round_trips_adaptive_cells(self, stores, tmp_path):
        path = tmp_path / "adaptive.jsonl"
        stores["serial"].save(path)
        loaded = ResultStore.load(path)
        for user_id in ("b", "f", "g"):
            entry = loaded.get(user_id)
            assert entry.cell.policy.adapter is not None
            assert entry.result.records == stores["serial"].result_of(user_id).records


class TestCellAdapterOverlay:
    def test_cell_adapter_overlays_the_policy(self, linear_predictor):
        policy = PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}))
        cell = ExperimentCell(
            cell_id="c",
            benchmark="skype",
            policy=policy,
            adapter=AdapterSpec("fixed"),
            predictor=linear_predictor,
        )
        manager = cell.build_manager()
        assert isinstance(manager, AdaptiveComfortManager)
        assert cell.effective_policy().adapter.name == "fixed"

    def test_cell_adapter_requires_a_policy(self):
        with pytest.raises(ValueError, match="adapter is only meaningful"):
            ExperimentCell(cell_id="c", benchmark="skype", adapter=AdapterSpec("fixed"))

    def test_adapter_spec_requires_manager_in_policy(self):
        with pytest.raises(SpecError, match="needs a thermal manager"):
            PolicySpec(adapter=AdapterSpec("fixed"))

    def test_for_user_personalises_params_the_adapter_does_not_learn(self):
        """Adaptive policies keep the initial *skin* limit (the loop learns it)
        but still take every other per-user manager param — the screen limit
        of usta-screen is not adapted and must come from the profile."""
        profile = paper_population()["b"]  # skin 34.3, screen 33.0
        spec = PolicySpec(
            manager=ManagerSpec("usta-screen", params={"skin_limit_c": 37.0}),
            adapter=AdapterSpec("feedback_step"),
        ).for_user(profile)
        assert spec.manager.params["skin_limit_c"] == 37.0
        assert spec.manager.params["screen_limit_c"] == profile.screen_limit_c
        assert spec.adapter.feedback["true_limit_c"] == profile.skin_limit_c


class TestConvergenceReport:
    def test_quantile_tracker_converges_within_half_a_degree(self):
        """Acceptance criterion: within 0.5 °C of every simulated user's true
        limit on the default population (default user included)."""
        rows = adaptation_trajectories("quantile_tracker")
        assert len(rows) == 11
        for row in rows:
            assert row.final_error_c <= 0.5, (
                f"user {row.user_id}: converged to {row.final_limit_c:.2f} °C, "
                f"true limit {row.true_limit_c:.2f} °C"
            )

    def test_fixed_adapter_never_moves_in_the_report(self):
        rows = adaptation_trajectories("fixed", include_default_user=False)
        for row in rows:
            assert set(row.limits_c) == {row.initial_limit_c}
            assert row.final_limit_c == row.initial_limit_c

    def test_trajectories_are_recorded_and_downsampled(self):
        rows = adaptation_trajectories(
            "quantile_tracker", include_default_user=False, trajectory_points=50
        )
        for row in rows:
            assert len(row.times_s) == len(row.limits_c)
            assert len(row.times_s) <= 52
            assert row.limits_c[-1] == row.final_limit_c
            assert row.n_events > 0

    def test_probe_covers_the_population_range(self):
        probe = limit_probe_temperatures()
        population = paper_population()
        assert probe.min() < population.min_skin_limit_c
        assert probe.max() > population.max_skin_limit_c

    def test_render_adaptation(self):
        text = render_adaptation(adaptation_trajectories("quantile_tracker"))
        assert "worst convergence" in text
        assert "quantile_tracker" in text


class TestFrontier:
    def test_frontier_compares_static_oracle_and_adaptive(self, small_context):
        points = comfort_performance_frontier(
            small_context,
            adapters=("feedback_step",),
            duration_s=150.0,
            user_ids=("b", "g"),
        )
        schemes = {(p.user_id, p.scheme) for p in points}
        assert schemes == {
            ("b", "static"), ("b", "oracle"), ("b", "feedback_step"),
            ("g", "static"), ("g", "oracle"), ("g", "feedback_step"),
        }
        for p in points:
            assert p.discomfort_minutes >= 0.0
            assert 0.0 <= p.throughput_loss <= 1.0
        by = {(p.user_id, p.scheme): p for p in points}
        # The oracle runs at the true limit; static and adaptive start at 37.
        assert by[("b", "oracle")].final_limit_c == pytest.approx(34.3)
        assert by[("b", "static")].final_limit_c == pytest.approx(37.0)
        # User b keeps complaining on a warm start, so the loop moved the limit.
        assert by[("b", "feedback_step")].final_limit_c < 37.0
        assert by[("b", "feedback_step")].final_error_c is not None
        rendered = render_frontier(points)
        assert "discomfort min" in rendered and "oracle" in rendered
