"""Cross-module property-based tests (hypothesis).

These check system-level invariants that should hold for *any* workload,
policy or limit — not just the paper's configurations:

* a frequency cap is never violated by the closed loop;
* USTA can only lower (never raise) the peak temperature and average frequency;
* the thermal state stays within physically sensible bounds for any activity;
* tighter comfort limits never lead to hotter peaks.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ThrottlePolicy, USTAController
from repro.device.freq_table import nexus4_frequency_table
from repro.device.platform import DeviceActivity, DevicePlatform
from repro.sim.experiments import run_workload
from repro.workloads import ConstantLoad, WorkloadSample, WorkloadTrace

TABLE = nexus4_frequency_table()

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def constant_trace(demand, duration_s=240, **fields):
    sample = WorkloadSample(cpu_demand=demand, **fields)
    return WorkloadTrace.constant("prop", duration_s, sample)


class TestClosedLoopInvariants:
    @SLOW
    @given(
        demand=st.floats(0.0, 1.0),
        cap=st.integers(0, 11),
    )
    def test_external_cap_is_never_violated(self, demand, cap):
        """Whatever the load, the selected frequency never exceeds the cap."""

        class FixedCapManager:
            name = "fixed-cap"

            def observe(self, time_s, sensor_readings, utilization, frequency_khz):
                from repro.sim.engine import ManagerDecision

                return ManagerDecision(level_cap=cap)

            def reset(self):
                pass

        result = run_workload(
            constant_trace(demand, 90), thermal_manager=FixedCapManager(), seed=1
        )
        # The very first window runs at the pre-existing level (minimum), every
        # later one must respect the cap.
        assert max(result.frequencies_khz()[1:]) <= TABLE.frequency_at(cap)

    @SLOW
    @given(limit=st.floats(30.5, 45.0), demand=st.floats(0.5, 1.0))
    def test_usta_never_runs_hotter_or_faster_than_baseline(
        self, limit, demand, linear_predictor
    ):
        trace = constant_trace(demand, 300, gpu_activity=0.3, brightness=0.9)
        baseline = run_workload(trace, governor="ondemand", seed=2)
        usta = USTAController(predictor=linear_predictor, skin_limit_c=limit)
        managed = run_workload(trace, governor="ondemand", thermal_manager=usta, seed=2)
        assert managed.max_skin_temp_c <= baseline.max_skin_temp_c + 0.05
        assert managed.average_frequency_ghz <= baseline.average_frequency_ghz + 1e-9
        assert managed.delivered_work <= baseline.delivered_work + 1e-9

    @SLOW
    @given(
        limit_low=st.floats(31.0, 36.0),
        delta=st.floats(1.0, 8.0),
    )
    def test_tighter_limits_never_give_hotter_peaks(self, limit_low, delta, linear_predictor):
        trace = constant_trace(0.95, 300, gpu_activity=0.3, brightness=0.9)
        tight = USTAController(predictor=linear_predictor, skin_limit_c=limit_low)
        loose = USTAController(predictor=linear_predictor, skin_limit_c=limit_low + delta)
        result_tight = run_workload(trace, governor="ondemand", thermal_manager=tight, seed=3)
        result_loose = run_workload(trace, governor="ondemand", thermal_manager=loose, seed=3)
        assert result_tight.max_skin_temp_c <= result_loose.max_skin_temp_c + 0.1


class TestPlatformInvariants:
    @SLOW
    @given(
        demand=st.floats(0.0, 1.0),
        gpu=st.floats(0.0, 1.0),
        radio=st.floats(0.0, 1.0),
        brightness=st.floats(0.0, 1.0),
        charging=st.booleans(),
    )
    def test_temperatures_stay_physical(self, demand, gpu, radio, brightness, charging):
        """Node temperatures stay between ambient and a hard physical ceiling."""
        platform = DevicePlatform(seed=0)
        platform.set_frequency_level(TABLE.max_level)
        activity = DeviceActivity(
            cpu_demand=demand,
            gpu_activity=gpu,
            radio_activity=radio,
            brightness=brightness,
            charging=charging,
        )
        for _ in range(120):
            result = platform.step(activity, dt_s=5.0)
        ambient = platform.ambient.air_temp_c
        for name, temp in result.node_temps_c.items():
            assert ambient - 0.5 <= temp <= 95.0, name

    @SLOW
    @given(seed=st.integers(0, 10_000))
    def test_simulation_is_deterministic_per_seed(self, seed):
        trace = ConstantLoad(duration_s=60, demand=0.7, seed=seed).generate("det")
        a = run_workload(trace, governor="ondemand", seed=seed)
        b = run_workload(trace, governor="ondemand", seed=seed)
        assert np.allclose(a.skin_temps_c(), b.skin_temps_c())
        assert np.array_equal(a.frequencies_khz(), b.frequencies_khz())


class TestPolicyInvariants:
    @given(
        margin_a=st.floats(-5.0, 6.0),
        margin_b=st.floats(-5.0, 6.0),
        activation=st.floats(0.5, 5.0),
    )
    def test_any_scaled_policy_is_monotone(self, margin_a, margin_b, activation):
        policy = ThrottlePolicy.with_activation_margin(activation)
        cap_a = policy.cap_for_margin(margin_a, TABLE)
        cap_b = policy.cap_for_margin(margin_b, TABLE)
        value_a = TABLE.max_level if cap_a is None else cap_a
        value_b = TABLE.max_level if cap_b is None else cap_b
        if margin_a <= margin_b:
            assert value_a <= value_b
        else:
            assert value_a >= value_b
