"""Tests for the paper-reproduction analysis (Table 1 and Figures 1-5).

All experiments run on shortened workloads through the ``small_context``
fixture; the full-length reproduction lives in the benchmark harness.
"""

import pytest

from repro.analysis import (
    PAPER_DEFAULT_LIMIT_C,
    PAPER_TABLE1,
    PAPER_USER_STUDY_RANGE_C,
    figure1_user_thresholds,
    figure2_time_over_threshold,
    figure3_prediction_errors,
    figure4_skype_traces,
    figure5_user_ratings,
    format_table,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_table1,
    reproduce_table1,
)
from repro.analysis.context import ReproductionContext


class TestPaperData:
    def test_table1_covers_all_thirteen_benchmarks(self):
        assert len(PAPER_TABLE1) == 13

    def test_default_limit_and_user_range(self):
        assert PAPER_DEFAULT_LIMIT_C == 37.0
        assert PAPER_USER_STUDY_RANGE_C == (34.0, 42.8)

    def test_usta_reduces_peak_in_paper_table_for_hot_benchmarks(self):
        # Sanity of the transcription: on the hot benchmarks the paper's USTA
        # column is cooler than the baseline column.
        for name in ("antutu_tester", "skype", "antutu_cpu"):
            row = PAPER_TABLE1[name]
            assert row.usta_max_skin_c < row.baseline_max_skin_c


class TestContext:
    def test_context_provides_usta_builders(self, small_context):
        default = small_context.usta_default()
        assert default.skin_limit_c == pytest.approx(37.0, abs=0.05)
        user = small_context.usta_for_user(small_context.population["f"])
        assert user.skin_limit_c == pytest.approx(34.0)
        fixed = small_context.usta_for_limit(40.0)
        assert fixed.skin_limit_c == 40.0

    def test_build_constructs_trained_predictor(self):
        context = ReproductionContext.build(seed=1, duration_scale=0.03)
        assert context.training_data.num_records > 10
        assert context.predictor.skin_model.is_fitted


class TestFigure1:
    def test_rows_cover_all_users(self, small_context):
        rows = figure1_user_thresholds(small_context, duration_s=300)
        assert len(rows) == 10
        assert {row.user_id for row in rows} == set(small_context.population.user_ids)

    def test_limits_match_population(self, small_context):
        rows = figure1_user_thresholds(small_context, duration_s=300)
        limits = {row.user_id: row.skin_limit_c for row in rows}
        assert limits["f"] == pytest.approx(34.0)
        assert limits["g"] == pytest.approx(42.8)

    def test_less_tolerant_users_report_discomfort_sooner(self, small_context):
        # A longer stress run crosses the lower limits first.
        rows = figure1_user_thresholds(small_context, duration_s=1500)
        onsets = {row.user_id: row.onset_time_s for row in rows}
        if onsets["f"] is not None and onsets["a"] is not None:
            assert onsets["f"] <= onsets["a"]
        # The most tolerant user never gets uncomfortable on a shortened run.
        assert onsets["g"] is None


class TestFigure2:
    def test_eleven_limit_settings(self, small_context):
        rows = figure2_time_over_threshold(small_context, duration_s=240)
        assert len(rows) == 11
        assert rows[-1].user_id == "default"

    def test_percentages_bounded(self, small_context):
        rows = figure2_time_over_threshold(small_context, duration_s=240)
        assert all(0.0 <= row.percent_time_over_limit <= 100.0 for row in rows)

    def test_tolerant_users_never_exceed_their_limit(self, small_context):
        rows = figure2_time_over_threshold(small_context, duration_s=240)
        by_user = {row.user_id: row for row in rows}
        assert by_user["g"].percent_time_over_limit == 0.0

    def test_baseline_variant_is_at_least_as_bad(self, small_context):
        usta_rows = figure2_time_over_threshold(small_context, duration_s=600, under_usta=True)
        base_rows = figure2_time_over_threshold(small_context, duration_s=600, under_usta=False)
        for u, b in zip(usta_rows, base_rows):
            assert u.percent_time_over_limit <= b.percent_time_over_limit + 1e-6


class TestFigure3:
    def test_rows_cover_requested_models(self, small_context):
        rows = figure3_prediction_errors(
            small_context, folds=4, model_names=("linear_regression", "reptree")
        )
        assert {row.model_name for row in rows} == {"linear_regression", "reptree"}

    def test_error_rates_are_non_negative_and_deadband_not_larger(self, small_context):
        rows = figure3_prediction_errors(small_context, folds=4, model_names=("reptree",))
        row = rows[0]
        assert row.skin_error_rate_pct >= 0.0
        assert row.skin_error_rate_deadband_pct <= row.skin_error_rate_pct + 1e-9
        assert row.screen_error_rate_deadband_pct <= row.screen_error_rate_pct + 1e-9


class TestFigure4:
    def test_series_structure_and_reduction(self, small_context):
        series = figure4_skype_traces(small_context, duration_s=900)
        assert series.limit_c == pytest.approx(37.0, abs=0.05)
        assert len(series.baseline) == len(series.usta) == 900
        sampled = series.sampled_series(every_s=60.0)
        assert len(sampled) == 15
        assert set(sampled[0]) == {
            "time_s",
            "baseline_skin_c",
            "usta_skin_c",
            "baseline_screen_c",
            "usta_screen_c",
        }

    def test_usta_never_hotter_than_baseline_at_peak(self, small_context):
        series = figure4_skype_traces(small_context, duration_s=900)
        assert series.usta.max_skin_temp_c <= series.baseline.max_skin_temp_c + 0.2
        assert 0.0 <= series.average_frequency_reduction_fraction <= 1.0


class TestFigure5:
    def test_rows_and_summary(self, small_context):
        rows, summary = figure5_user_ratings(small_context, duration_s=600)
        assert len(rows) == 10
        assert all(1 <= row.baseline_rating <= 5 for row in rows)
        assert all(1 <= row.usta_rating <= 5 for row in rows)
        assert (
            summary["prefer_usta"] + summary["prefer_baseline"] + summary["no_difference"] == 10
        )
        assert 1.0 <= summary["mean_baseline_rating"] <= 5.0
        assert 1.0 <= summary["mean_usta_rating"] <= 5.0

    def test_usta_not_worse_on_average(self, small_context):
        _, summary = figure5_user_ratings(small_context, duration_s=600)
        assert summary["mean_usta_rating"] >= summary["mean_baseline_rating"] - 0.11


class TestTable1:
    def test_subset_of_benchmarks(self, small_context):
        rows = reproduce_table1(
            small_context, benchmarks=("youtube", "skype"), duration_scale=0.1
        )
        assert [row.benchmark for row in rows] == ["youtube", "skype"]
        for row in rows:
            assert row.paper is not None
            assert row.baseline_max_skin_c > 20.0
            assert row.usta_max_skin_c > 20.0
            assert row.baseline_avg_freq_ghz > 0.0

    def test_skin_reduction_property(self, small_context):
        rows = reproduce_table1(small_context, benchmarks=("skype",), duration_scale=0.2)
        row = rows[0]
        assert row.skin_reduction_c == pytest.approx(
            row.baseline_max_skin_c - row.usta_max_skin_c
        )

    def test_invalid_duration_scale(self, small_context):
        with pytest.raises(ValueError):
            reproduce_table1(small_context, duration_scale=0.0)


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_functions_produce_text(self, small_context):
        fig1 = render_figure1(figure1_user_thresholds(small_context, duration_s=120))
        assert "user" in fig1 and "g" in fig1
        fig2 = render_figure2(figure2_time_over_threshold(small_context, duration_s=120))
        assert "% time over limit" in fig2
        fig3 = render_figure3(
            figure3_prediction_errors(small_context, folds=3, model_names=("reptree",))
        )
        assert "reptree" in fig3
        fig4 = render_figure4(figure4_skype_traces(small_context, duration_s=300), every_s=100)
        assert "peak skin reduction" in fig4
        rows5, summary5 = figure5_user_ratings(small_context, duration_s=300)
        fig5 = render_figure5(rows5, summary5)
        assert "mean baseline rating" in fig5
        table = render_table1(
            reproduce_table1(small_context, benchmarks=("youtube",), duration_scale=0.05)
        )
        assert "youtube" in table
