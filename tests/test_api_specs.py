"""Tests for the declarative policy API: registries, specs, and the
bit-exact parity between spec-built and hand-constructed runs."""

import json
from pathlib import Path

import pytest

from repro.api import GOVERNORS, MANAGERS, PREDICTORS, UnknownComponentError
from repro.api.specs import (
    GovernorSpec,
    ManagerSpec,
    PolicySpec,
    PredictorSpec,
    SpecError,
)
from repro.core.policy import ThrottlePolicy, ThrottleStep
from repro.core.predictor import RuntimePredictor
from repro.core.screen_aware import ScreenAwareUSTAController
from repro.core.usta import USTAController
from repro.device.freq_table import nexus4_frequency_table
from repro.device.platform import DevicePlatform
from repro.governors.ondemand import OndemandGovernor
from repro.runtime import (
    BatchRunner,
    ExperimentCell,
    ExperimentPlan,
    ProcessPoolCellExecutor,
    SerialExecutor,
    VectorizedExecutor,
)
from repro.sim.engine import Simulator
from repro.users.population import paper_population

TABLE = nexus4_frequency_table()


class TestRegistries:
    def test_stock_components_registered(self):
        assert set(GOVERNORS.names()) == {
            "ondemand",
            "conservative",
            "performance",
            "powersave",
            "userspace",
        }
        assert set(MANAGERS.names()) == {"usta", "usta-screen", "trip-point"}
        assert "trained" in PREDICTORS.names()

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(UnknownComponentError, match="ondemand"):
            GOVERNORS.get("ondemnd")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="known governors"):
            GOVERNORS.get("turbo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            GOVERNORS.register("ondemand")(object)

    def test_reregistering_same_object_is_idempotent(self):
        assert GOVERNORS.register("ondemand")(OndemandGovernor) is OndemandGovernor

    def test_create_manager_by_name(self, linear_predictor):
        manager = MANAGERS.create("usta", predictor=linear_predictor, skin_limit_c=36.0)
        assert isinstance(manager, USTAController)
        assert manager.skin_limit_c == 36.0
        screen = MANAGERS.create(
            "usta-screen", predictor=linear_predictor, skin_limit_c=36.0, screen_limit_c=34.0
        )
        assert isinstance(screen, ScreenAwareUSTAController)


class TestThrottlePolicySpec:
    @pytest.mark.parametrize(
        "policy",
        [
            ThrottlePolicy.paper_default(),
            ThrottlePolicy.aggressive(),
            ThrottlePolicy.gentle(),
            ThrottlePolicy.with_activation_margin(1.7),
            ThrottlePolicy(
                steps=(
                    ThrottleStep(margin_above_c=4.0, levels_below_max=3),
                    ThrottleStep(margin_above_c=0.25, levels_below_max=None),
                )
            ),
        ],
        ids=["paper", "aggressive", "gentle", "margin-1.7", "custom"],
    )
    def test_round_trip(self, policy):
        rebuilt = ThrottlePolicy.from_spec(policy.to_spec())
        assert rebuilt == policy
        # And the spec dictionary survives JSON.
        assert ThrottlePolicy.from_spec(json.loads(json.dumps(policy.to_spec()))) == policy

    def test_round_trip_preserves_caps(self, freq_table):
        policy = ThrottlePolicy.aggressive()
        rebuilt = ThrottlePolicy.from_spec(policy.to_spec())
        for margin in (-1.0, 0.1, 0.8, 1.6, 2.9, 3.5):
            assert rebuilt.cap_for_margin(margin, freq_table) == policy.cap_for_margin(
                margin, freq_table
            )

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            ThrottlePolicy.from_spec({"steps": [], "margin": 2.0})

    def test_unknown_step_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            ThrottlePolicy.from_spec(
                {"steps": [{"margin_above_c": 2.0, "levels": 1}]}
            )

    def test_invalid_step_table_rejected(self):
        with pytest.raises(ValueError, match="decreasing margin"):
            ThrottlePolicy.from_spec(
                {
                    "steps": [
                        {"margin_above_c": 1.0, "levels_below_max": 1},
                        {"margin_above_c": 2.0, "levels_below_max": 2},
                    ]
                }
            )


class TestSpecRoundTrips:
    def test_policy_spec_json_round_trip(self):
        spec = PolicySpec(
            governor=GovernorSpec("ondemand", params={"up_threshold": 0.9}),
            manager=ManagerSpec(
                "usta",
                params={"skin_limit_c": 36.5, "prediction_period_s": 2.0},
                policy=ThrottlePolicy.gentle().to_spec(),
                predictor=PredictorSpec(
                    "trained", params={"model": "reptree", "duration_scale": 0.1}
                ),
            ),
            label="gentle-usta",
        )
        assert PolicySpec.from_json(spec.to_json()) == spec
        assert PolicySpec.from_spec(spec.to_spec()) == spec

    def test_governor_string_shorthand(self):
        spec = PolicySpec.from_spec({"governor": "conservative"})
        assert spec.governor == GovernorSpec("conservative")
        assert spec.manager is None

    def test_unknown_policy_key_with_suggestion(self):
        with pytest.raises(SpecError, match="did you mean 'governor'"):
            PolicySpec.from_spec({"governer": {"name": "ondemand"}})

    def test_unknown_manager_key_rejected(self):
        with pytest.raises(SpecError, match="unknown key 'predictors'"):
            ManagerSpec.from_spec({"name": "usta", "predictors": {}})

    def test_missing_required_key(self):
        with pytest.raises(SpecError, match="requires the key 'name'"):
            GovernorSpec.from_spec({"params": {}})

    def test_invalid_json_text(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            PolicySpec.from_json("{not json")

    def test_bad_governor_params_surface_as_spec_error(self):
        with pytest.raises(SpecError, match="invalid params for governor"):
            GovernorSpec("ondemand", params={"warp_factor": 9}).build()

    def test_manager_without_predictor_fails_helpfully(self):
        with pytest.raises(SpecError, match="needs a predictor"):
            ManagerSpec("usta").build()

    def test_for_user_overrides_limits(self, linear_predictor):
        profile = next(iter(paper_population()))
        spec = PolicySpec(manager=ManagerSpec("usta"))
        manager = spec.for_user(profile).build_manager(predictor=linear_predictor)
        assert manager.skin_limit_c == profile.skin_limit_c
        # Bare-governor policies pass through unchanged.
        bare = PolicySpec()
        assert bare.for_user(profile) is bare

    def test_example_policy_file_loads(self):
        path = Path(__file__).resolve().parent.parent / "examples" / "policy.json"
        spec = PolicySpec.from_file(path)
        assert spec.governor.name == "ondemand"
        assert spec.manager.name == "usta"
        assert spec.manager.throttle_policy() == ThrottlePolicy.paper_default()
        assert spec.validate_registered() is spec

    def test_bad_throttle_section_raises_spec_error(self):
        with pytest.raises(SpecError, match="bad throttle policy"):
            ManagerSpec.from_spec(
                {"name": "usta", "policy": {"steps": [{"margin": 2.0}]}}
            )

    def test_unknown_component_names_fail_as_spec_errors(self, linear_predictor):
        # Parsing stays permissive (plugins may register later)...
        spec = PolicySpec.from_spec({"governor": {"name": "ondemnd"}})
        # ...but validation and build both surface SpecError, not KeyError.
        with pytest.raises(SpecError, match="did you mean 'ondemand'"):
            spec.validate_registered()
        with pytest.raises(SpecError, match="unknown governor"):
            spec.build_governor()
        with pytest.raises(SpecError, match="unknown thermal manager"):
            ManagerSpec("usta-quantum").build(predictor=linear_predictor)
        with pytest.raises(SpecError, match="unknown predictor"):
            PolicySpec(
                manager=ManagerSpec("usta", predictor=PredictorSpec("untrained"))
            ).validate_registered()

    def test_for_user_uses_declared_profile_params(self, linear_predictor):
        profile = next(iter(paper_population()))
        screen = ManagerSpec("usta-screen").for_user(profile)
        assert screen.params["skin_limit_c"] == profile.skin_limit_c
        assert screen.params["screen_limit_c"] == profile.screen_limit_c

    def test_for_user_leaves_managers_without_profile_params_alone(self):
        from repro.api.registry import MANAGERS

        class FixedCapManager:  # no profile_params declared
            def __init__(self, predictor, cap=3):
                self.cap = cap

        MANAGERS.register("fixed-cap-test")(FixedCapManager)
        try:
            profile = next(iter(paper_population()))
            spec = ManagerSpec("fixed-cap-test", params={"cap": 2})
            assert spec.for_user(profile) is spec  # no skin_limit_c injected
        finally:
            del MANAGERS._components["fixed-cap-test"]


class TestTrainedPredictorSpec:
    def test_trained_recipe_builds_and_caches(self):
        spec = PredictorSpec(
            "trained",
            params={"model": "linear_regression", "duration_scale": 0.05, "benchmarks": ["skype"], "seed": 9},
        )
        predictor = spec.build()
        assert isinstance(predictor, RuntimePredictor)
        assert predictor.skin_model.is_fitted
        # Same recipe → same cached object (no retraining per cell).
        assert spec.build() is predictor


def _build_plan(trace, linear_predictor, skin_limit_c):
    """Two spec-built cells (baseline + USTA) sharing one trace.

    The specs go through a JSON round trip first: the acceptance criterion is
    that a run built from ``PolicySpec.from_json`` matches hand construction.
    """
    baseline = PolicySpec.from_json(PolicySpec(governor=GovernorSpec("ondemand")).to_json())
    usta = PolicySpec.from_json(
        PolicySpec(
            governor=GovernorSpec("ondemand"),
            manager=ManagerSpec("usta", params={"skin_limit_c": skin_limit_c}),
        ).to_json()
    )
    plan = ExperimentPlan()
    plan.add(ExperimentCell(cell_id="baseline", trace=trace, policy=baseline, seed=5))
    plan.add(
        ExperimentCell(
            cell_id="usta",
            trace=trace,
            policy=usta,
            predictor=linear_predictor,
            seed=5,
        )
    )
    return plan


def _hand_built_results(trace, linear_predictor, skin_limit_c):
    """The same two runs wired by hand, the pre-spec way."""
    results = {}
    platform = DevicePlatform(seed=5)
    simulator = Simulator(platform=platform, governor=OndemandGovernor(table=platform.freq_table))
    results["baseline"] = simulator.run(trace)

    platform = DevicePlatform(seed=5)
    simulator = Simulator(
        platform=platform,
        governor=OndemandGovernor(table=platform.freq_table),
        thermal_manager=USTAController(predictor=linear_predictor, skin_limit_c=skin_limit_c),
    )
    results["usta"] = simulator.run(trace)
    return results


class TestSpecBuiltParity:
    """Acceptance: spec-built runs are bit-identical to hand-built runs."""

    # Low enough that the shortened Skype call (predicted skin ≈ CPU − 5 °C,
    # peaking around 31 °C) actually crosses the activation margin.
    SKIN_LIMIT_C = 32.0

    @pytest.mark.parametrize(
        "executor",
        [SerialExecutor(), ProcessPoolCellExecutor(max_workers=2), VectorizedExecutor()],
        ids=["serial", "pool", "vectorized"],
    )
    def test_bit_identical_under_every_executor(
        self, executor, skype_trace_short, linear_predictor
    ):
        plan = _build_plan(skype_trace_short, linear_predictor, self.SKIN_LIMIT_C)
        expected = _hand_built_results(skype_trace_short, linear_predictor, self.SKIN_LIMIT_C)

        store = BatchRunner(executor=executor).run(plan)
        for cell_id in ("baseline", "usta"):
            got = store.result_of(cell_id)
            assert got.governor_name == expected[cell_id].governor_name
            assert got.records == expected[cell_id].records

    def test_usta_cell_actually_intervenes(self, skype_trace_short, linear_predictor):
        # Guard against vacuous parity: with a 32 °C limit the shortened Skype
        # call must trigger USTA at least once.
        plan = _build_plan(skype_trace_short, linear_predictor, self.SKIN_LIMIT_C)
        store = BatchRunner(executor=SerialExecutor()).run(plan)
        assert any(r.usta_active for r in store.result_of("usta").records)
        assert not any(r.usta_active for r in store.result_of("baseline").records)
