"""Tests for the k-fold cross-validation harness."""

import numpy as np
import pytest

from repro.ml import Dataset, LinearRegression, RepTree, cross_validate, kfold_indices


def make_dataset(n=120, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 10, size=(n, 3))
    y = 1.5 * x[:, 0] - 0.5 * x[:, 1] + 0.1 * x[:, 2] + rng.normal(0, 0.2, n)
    return Dataset(x, y, ("a", "b", "c"), "y")


class TestKFoldIndices:
    def test_every_sample_tested_exactly_once(self):
        pairs = kfold_indices(57, folds=10, seed=0)
        tested = np.concatenate([test for _, test in pairs])
        assert sorted(tested.tolist()) == list(range(57))

    def test_train_and_test_are_disjoint(self):
        for train, test in kfold_indices(40, folds=5, seed=1):
            assert set(train.tolist()).isdisjoint(test.tolist())
            assert len(train) + len(test) == 40

    def test_fold_count(self):
        assert len(kfold_indices(100, folds=10)) == 10
        assert len(kfold_indices(10, folds=2)) == 2

    def test_deterministic_per_seed(self):
        a = kfold_indices(30, folds=3, seed=7)
        b = kfold_indices(30, folds=3, seed=7)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb)
            assert np.array_equal(sa, sb)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            kfold_indices(10, folds=1)
        with pytest.raises(ValueError):
            kfold_indices(3, folds=5)


class TestCrossValidate:
    def test_produces_prediction_for_every_row(self):
        data = make_dataset()
        result = cross_validate(LinearRegression, data, folds=5, seed=0)
        assert len(result.predicted) == len(data)
        assert not np.any(np.isnan(result.predicted))
        assert np.array_equal(result.expected, data.target)

    def test_records_per_fold_metrics(self):
        result = cross_validate(LinearRegression, make_dataset(), folds=5, seed=0)
        assert len(result.fold_metrics) == 5
        assert all("error_rate_pct" in m for m in result.fold_metrics)

    def test_model_name_captured(self):
        result = cross_validate(lambda: RepTree(min_leaf=5), make_dataset(), folds=4)
        assert result.model_name == "reptree"

    def test_error_rate_properties(self):
        result = cross_validate(LinearRegression, make_dataset(), folds=5)
        assert result.error_rate_pct >= 0.0
        assert result.error_rate_deadband_pct <= result.error_rate_pct + 1e-9

    def test_accurate_model_has_low_error(self):
        result = cross_validate(LinearRegression, make_dataset(), folds=10, seed=2)
        assert result.metrics["r2"] > 0.95

    def test_empty_dataset_rejected(self):
        empty = Dataset(np.empty((0, 2)), np.empty(0), ("a", "b"), "y")
        with pytest.raises(ValueError):
            cross_validate(LinearRegression, empty)

    def test_deterministic_given_seed(self):
        data = make_dataset()
        a = cross_validate(lambda: RepTree(seed=0), data, folds=5, seed=3)
        b = cross_validate(lambda: RepTree(seed=0), data, folds=5, seed=3)
        assert np.allclose(a.predicted, b.predicted)
