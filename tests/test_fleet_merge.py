"""Property tests for the fleet shard-directory merge (satellite of PR 7).

The contract: :func:`merge_stores` compacts K worker shard directories into
one plan-ordered store whose bytes do not depend on K or on the order the
sources are listed — merging K directories is byte-identical to merging the
same cells from a single directory — and a killed worker's truncated final
line is healed (dropped) by compaction rather than copied into the merge.
"""

import json
import shutil

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fleet.merge import (
    MergeError,
    collect_cell_locations,
    harvest_completed_ids,
    merge_stores,
    stores_byte_identical,
)
from repro.runtime import StreamingResultStore


def _payload(cell_id: str, salt: int) -> str:
    """A synthetic committed shard line (fixed wall time: truly byte-stable)."""
    return (
        json.dumps(
            {
                "cell": {"cell_id": cell_id},
                "result": {"records": [salt, salt + 1]},
                "wall_time_s": 0.0,
            },
            separators=(",", ":"),
        )
        + "\n"
    )


def _write_store(directory, cells, max_cells_per_shard=3, truncate_tail=False):
    """Hand-write a shard directory (no sidecar — the scan rebuilds it).

    ``truncate_tail`` chops the final line mid-payload, simulating a worker
    SIGKILLed between ``begin_cell`` and ``end_cell``.
    """
    directory.mkdir(parents=True, exist_ok=True)
    for shard_index in range(0, max(len(cells), 1), max_cells_per_shard):
        chunk = cells[shard_index : shard_index + max_cells_per_shard]
        if not chunk:
            continue
        data = "".join(_payload(cell_id, salt) for cell_id, salt in chunk)
        path = directory / f"shard-{shard_index // max_cells_per_shard:05d}.jsonl"
        path.write_text(data, encoding="utf-8")
    if truncate_tail and cells:
        shards = sorted(directory.glob("shard-*.jsonl"))
        raw = shards[-1].read_bytes()
        shards[-1].write_bytes(raw[: len(raw) - 9])  # mid-line, no newline


class TestMergeProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n_cells=st.integers(1, 24),
        groups=st.lists(st.integers(0, 3), min_size=24, max_size=24),
        order_seed=st.randoms(use_true_random=False),
        shard_size=st.integers(1, 5),
    )
    def test_merge_is_order_insensitive_and_k_invariant(
        self, tmp_path, n_cells, groups, order_seed, shard_size
    ):
        """K shard dirs, any source order -> bytes identical to K=1."""
        root = tmp_path / "prop"
        if root.exists():
            shutil.rmtree(root)
        cells = [(f"c{i:02d}", i * 7) for i in range(n_cells)]
        cell_order = [cell_id for cell_id, _ in cells]

        # Partition the cells into up to 4 worker directories.
        partitions = {}
        for cell, group in zip(cells, groups):
            partitions.setdefault(group % 4, []).append(cell)
        sources = []
        for group, members in sorted(partitions.items()):
            directory = root / f"worker-{group}"
            _write_store(directory, members, max_cells_per_shard=shard_size)
            sources.append(directory)

        # Reference: the same cells merged from ONE directory.
        single = root / "single"
        _write_store(single, cells, max_cells_per_shard=shard_size)
        ref_dest = root / "ref"
        merge_stores([single], ref_dest, cell_order)

        # K directories, sources listed in a random order.
        shuffled = list(sources)
        order_seed.shuffle(shuffled)
        dest = root / "merged"
        report = merge_stores(shuffled, dest, cell_order)

        assert report.n_cells == n_cells
        assert stores_byte_identical(dest, ref_dest, ignore_wall_time=False) is None
        # The merged directory is a first-class store: indexed, complete.
        store = StreamingResultStore(dest)
        assert store.completed_cell_ids == set(cell_order)
        assert store.resumed_via_index
        store.close()

    def test_duplicate_cells_across_workers_keep_one_copy(self, tmp_path):
        """A reassigned unit can complete on two workers; the merge keeps one."""
        a = tmp_path / "a"
        b = tmp_path / "b"
        _write_store(a, [("x", 1), ("y", 2)])
        _write_store(b, [("y", 2), ("z", 3)])
        report = merge_stores([a, b], tmp_path / "out", ["x", "y", "z"])
        assert report.n_cells == 3
        store = StreamingResultStore(tmp_path / "out")
        assert store.completed_cell_ids == {"x", "y", "z"}
        store.close()

    def test_missing_cell_raises_merge_error(self, tmp_path):
        _write_store(tmp_path / "a", [("x", 1)])
        with pytest.raises(MergeError, match="missing 1 cell"):
            merge_stores([tmp_path / "a"], tmp_path / "out", ["x", "ghost"])


class TestTruncatedTailHealing:
    def test_killed_worker_tail_is_dropped_and_covered_elsewhere(self, tmp_path):
        """The acceptance fixture: a worker died mid-final-line; compaction
        heals its directory and the lost cell comes from the reassignee."""
        dead = tmp_path / "dead"
        _write_store(dead, [("x", 1), ("y", 2), ("z", 3)], truncate_tail=True)
        reassignee = tmp_path / "alive"
        _write_store(reassignee, [("z", 3)])

        dest = tmp_path / "merged"
        report = merge_stores([dead, reassignee], dest, ["x", "y", "z"])
        assert any("dead" in item and "z" in item for item in report.recovered)
        # Healing is one-shot: the worker directory itself is now clean, the
        # torn "z" line gone from it.
        locations, note = collect_cell_locations(dead)
        assert set(locations) == {"x", "y"}
        assert note is None
        # The healed merge is byte-identical to a clean single-source merge.
        clean = tmp_path / "clean"
        _write_store(clean, [("x", 1), ("y", 2), ("z", 3)])
        ref = tmp_path / "ref"
        merge_stores([clean], ref, ["x", "y", "z"])
        assert stores_byte_identical(dest, ref, ignore_wall_time=False) is None

    def test_truncated_tail_without_coverage_is_missing(self, tmp_path):
        dead = tmp_path / "dead"
        _write_store(dead, [("x", 1), ("y", 2)], truncate_tail=True)
        with pytest.raises(MergeError, match="missing"):
            merge_stores([dead], tmp_path / "out", ["x", "y"])

    def test_harvest_reports_first_directory_owning_each_cell(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        _write_store(a, [("x", 1)])
        _write_store(b, [("x", 1), ("y", 2)])
        owners = harvest_completed_ids([a, b])
        assert owners["x"] == a and owners["y"] == b


class TestCrashSafeSwap:
    def test_rerun_after_destination_populated_is_stable(self, tmp_path):
        """Re-merging over an existing destination (sources gone) succeeds:
        the destination is its own highest-priority source."""
        src = tmp_path / "src"
        _write_store(src, [("x", 1), ("y", 2)])
        dest = tmp_path / "out"
        merge_stores([src], dest, ["x", "y"])
        before = {p.name: p.read_bytes() for p in dest.glob("shard-*.jsonl")}

        shutil.rmtree(src)
        report = merge_stores([], dest, ["x", "y"])
        assert report.n_cells == 2
        after = {p.name: p.read_bytes() for p in dest.glob("shard-*.jsonl")}
        assert after == before

    def test_merge_compacts_to_plan_order_regardless_of_commit_order(self, tmp_path):
        src = tmp_path / "src"
        _write_store(src, [("y", 2), ("x", 1)])  # committed out of plan order
        dest = tmp_path / "out"
        merge_stores([src], dest, ["x", "y"])
        ordered = tmp_path / "ordered"
        _write_store(ordered, [("x", 1), ("y", 2)])
        ref = tmp_path / "ref"
        merge_stores([ordered], ref, ["x", "y"])
        assert stores_byte_identical(dest, ref, ignore_wall_time=False) is None
