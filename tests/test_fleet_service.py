"""Tests for the persistent serving front end and per-user state store.

The contract (the paper's per-user premise made durable): comfort limits
converge per user over real interaction time, so the service persists each
user's adapter/controller state and a returning user's session opens *at*
the persisted converged limit — adaptation resumes, it never restarts.
Shutdown is graceful: SIGTERM flushes the buffered cap-decision log and
saves session state before the process exits.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api.specs import AdapterSpec, GovernorSpec, ManagerSpec, PolicySpec
from repro.api.types import FeedbackEvent, TelemetrySample
from repro.cli import main
from repro.fleet import (
    PolicyService,
    SessionStateStore,
    restore_session_state,
    run_service,
    snapshot_session_state,
)
from repro.users import paper_population

TRACKER_POLICY = PolicySpec(
    manager=ManagerSpec("usta"), adapter=AdapterSpec("quantile_tracker")
)


def _profile():
    return next(iter(paper_population()))


def _sample(time_s: float, cpu: float = 45.0) -> TelemetrySample:
    return TelemetrySample(
        time_s=time_s,
        utilization=0.8,
        frequency_khz=1_512_000.0,
        sensor_readings={"cpu": cpu, "battery": cpu - 3.0},
    )


def _wire_sample(time_s: float, cpu: float = 45.0) -> dict:
    return {
        "time_s": time_s,
        "utilization": 0.8,
        "frequency_khz": 1_512_000.0,
        "sensors": {"cpu": cpu, "battery": cpu - 3.0},
    }


def _discomfort(time_s: float) -> dict:
    return {"time_s": time_s, "kind": "discomfort", "skin_temp_c": 35.0}


def _converge(service: PolicyService, session_id: str, events: int = 40) -> float:
    """Feed a session enough discomfort reports to converge its tracker."""
    for i in range(events):
        response = service.feed(
            session_id, _wire_sample(i * 3.0), feedback=[_discomfort(i * 3.0)]
        )
        assert response["ok"], response
    return service.pool.get(session_id).current_limit_c


class TestSessionStateSnapshots:
    @pytest.mark.parametrize(
        "adapter",
        [
            AdapterSpec("quantile_tracker"),
            AdapterSpec(
                "feedback_step",
                feedback={"true_limit_c": 34.3, "report_period_s": 9.0},
            ),
        ],
        ids=["quantile_tracker", "feedback_step"],
    )
    def test_snapshot_restore_round_trip(self, linear_predictor, adapter):
        policy = PolicySpec(manager=ManagerSpec("usta"), adapter=adapter)
        profile = _profile()
        service = PolicyService(
            policy, profiles={profile.user_id: profile}, predictor=linear_predictor
        )
        service.open("a", profile.user_id)
        for i in range(12):
            service.feed("a", _wire_sample(i * 9.0), feedback=[_discomfort(i * 9.0)])
        donor = service.pool.get("a")
        snapshot = snapshot_session_state(donor)
        assert snapshot is not None
        assert snapshot["adapter"]["kind"] == adapter.name

        service.open("b", profile.user_id)
        fresh = service.pool.get("b")
        assert restore_session_state(fresh, snapshot)
        assert fresh.current_limit_c == donor.current_limit_c
        assert (
            fresh.manager.adapter.snapshot_batch_state()
            == donor.manager.adapter.snapshot_batch_state()
        )

    def test_bare_governor_session_has_no_durable_state(self, linear_predictor):
        policy = PolicySpec(governor=GovernorSpec("ondemand"))
        service = PolicyService(policy, predictor=linear_predictor)
        service.open("a")
        session = service.pool.get("a")
        assert snapshot_session_state(session) is None
        assert restore_session_state(session, {"limit_c": 30.0}) is False

    def test_adapter_kind_mismatch_is_ignored(self, linear_predictor):
        """A tracker snapshot must not be forced into a feedback_step session."""
        profile = _profile()
        tracker = PolicyService(
            TRACKER_POLICY, profiles={profile.user_id: profile}, predictor=linear_predictor
        )
        tracker.open("a", profile.user_id)
        _converge(tracker, "a", events=10)
        snapshot = snapshot_session_state(tracker.pool.get("a"))

        stepper = PolicyService(
            PolicySpec(
                manager=ManagerSpec("usta"),
                adapter=AdapterSpec(
                    "feedback_step",
                    feedback={"true_limit_c": 34.3, "report_period_s": 9.0},
                ),
            ),
            profiles={profile.user_id: profile},
            predictor=linear_predictor,
        )
        stepper.open("b", profile.user_id)
        before = stepper.pool.get("b").current_limit_c
        assert restore_session_state(stepper.pool.get("b"), snapshot) is False
        assert stepper.pool.get("b").current_limit_c == before


class TestWarmStart:
    def test_returning_user_opens_at_persisted_converged_limit(
        self, tmp_path, linear_predictor
    ):
        """The acceptance criterion: a resumed user's session opens at the
        converged limit with the tracker's history intact — exactly, with no
        re-convergence from the initial limit."""
        profile = _profile()
        store = SessionStateStore(tmp_path / "state")
        service = PolicyService(
            TRACKER_POLICY,
            profiles={profile.user_id: profile},
            predictor=linear_predictor,
            state_store=store,
        )
        opened = service.open("visit1", profile.user_id)
        assert opened["resumed"] is False
        initial = opened["limit_c"]
        converged = _converge(service, "visit1", events=40)
        assert converged != initial  # feedback actually moved the limit
        donor_state = service.pool.get("visit1").manager.adapter.snapshot_batch_state()
        assert donor_state["event_count"] == 40
        service.close_session("visit1")  # persists on close
        service.shutdown()

        # A new process lifetime: everything reloaded from disk.
        reloaded = SessionStateStore(tmp_path / "state")
        assert reloaded.users == [profile.user_id]
        service2 = PolicyService(
            TRACKER_POLICY,
            profiles={profile.user_id: profile},
            predictor=linear_predictor,
            state_store=reloaded,
        )
        reopened = service2.open("visit2", profile.user_id)
        assert reopened["resumed"] is True
        assert reopened["limit_c"] == converged
        restored = service2.pool.get("visit2").manager.adapter.snapshot_batch_state()
        assert restored == donor_state

        # Adaptation *continues* (event 41), it does not restart (event 1).
        service2.feed("visit2", _wire_sample(0.0), feedback=[_discomfort(0.0)])
        after = service2.pool.get("visit2").manager.adapter.snapshot_batch_state()
        assert after["event_count"] == 41

    def test_unknown_user_is_a_cold_start(self, tmp_path, linear_predictor):
        profile = _profile()
        store = SessionStateStore(tmp_path / "state")
        service = PolicyService(
            TRACKER_POLICY,
            profiles={profile.user_id: profile},
            predictor=linear_predictor,
            state_store=store,
        )
        assert service.open("s", profile.user_id)["resumed"] is False

    def test_corrupt_state_file_is_refused(self, tmp_path):
        directory = tmp_path / "state"
        directory.mkdir()
        (directory / "session-state.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            SessionStateStore(directory)

    def test_version_mismatch_is_refused(self, tmp_path):
        directory = tmp_path / "state"
        directory.mkdir()
        (directory / "session-state.json").write_text(
            json.dumps({"version": 99, "users": {}}), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="version"):
            SessionStateStore(directory)


class TestPolicyServiceDispatch:
    def _service(self, linear_predictor, **kwargs):
        profile = _profile()
        return PolicyService(
            TRACKER_POLICY,
            profiles={profile.user_id: profile},
            predictor=linear_predictor,
            **kwargs,
        )

    def test_op_round_trip(self, linear_predictor):
        service = self._service(linear_predictor)
        user = _profile().user_id
        assert service.handle({"op": "ping"}) == {"ok": True, "pong": True}
        assert service.handle({"op": "open", "session": "s", "user": user})["ok"]
        fed = service.handle({"op": "feed", "session": "s", "sample": _wire_sample(0.0)})
        assert fed["ok"] and "level_cap" in fed["decision"]
        assert service.handle(
            {"op": "feedback", "session": "s", "event": _discomfort(1.0)}
        )["ok"]
        stats = service.handle({"op": "stats"})
        assert stats["sessions"] == 1 and stats["feeds"] == 1
        assert service.handle({"op": "close", "session": "s"})["ok"]
        assert service.handle({"op": "stats"})["sessions"] == 0

    def test_feed_batch_feeds_every_session(self, linear_predictor):
        service = self._service(linear_predictor)
        user = _profile().user_id
        for sid in ("a", "b", "c"):
            service.open(sid, user)
        response = service.handle(
            {
                "op": "feed_batch",
                "samples": {sid: _wire_sample(0.0) for sid in ("a", "b", "c")},
                "feedback": {"a": [_discomfort(0.0)]},
            }
        )
        assert response["ok"]
        assert set(response["decisions"]) == {"a", "b", "c"}
        assert service.stats()["feeds"] == 3

    def test_errors_are_wrapped_not_raised(self, linear_predictor):
        service = self._service(linear_predictor)
        unknown = service.handle({"op": "warp"})
        assert unknown["ok"] is False and "unknown op" in unknown["error"]
        missing = service.handle(
            {"op": "feed", "session": "ghost", "sample": _wire_sample(0.0)}
        )
        assert missing["ok"] is False and missing["error_type"] == "KeyError"

    def test_decision_log_is_buffered_until_checkpoint(self, tmp_path, linear_predictor):
        log = tmp_path / "decisions.jsonl"
        service = self._service(linear_predictor, decision_log=log)
        service.open("s", _profile().user_id)
        for i in range(5):
            service.feed("s", _wire_sample(float(i)))
        service.checkpoint()
        service.shutdown()
        lines = log.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 5
        parsed = [json.loads(line) for line in lines]
        assert all(entry["session"] == "s" for entry in parsed)


class TestSocketServer:
    def test_line_json_round_trip_and_shutdown_op(self, tmp_path, linear_predictor):
        profile = _profile()
        store = SessionStateStore(tmp_path / "state")
        service = PolicyService(
            TRACKER_POLICY,
            profiles={profile.user_id: profile},
            predictor=linear_predictor,
            state_store=store,
        )
        bound = {}
        ready = threading.Event()

        def on_listening(host, port):
            bound["addr"] = (host, port)
            ready.set()

        thread = threading.Thread(
            target=run_service,
            args=(service, "127.0.0.1", 0),
            kwargs={"checkpoint_period_s": None, "on_listening": on_listening},
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=30)
        with socket.create_connection(bound["addr"], timeout=30) as conn:
            fh = conn.makefile("rwb")

            def rpc(request):
                fh.write(json.dumps(request).encode() + b"\n")
                fh.flush()
                return json.loads(fh.readline())

            assert rpc({"op": "open", "session": "s", "user": profile.user_id})["ok"]
            assert rpc({"op": "feed", "session": "s", "sample": _wire_sample(0.0)})["ok"]
            bad = rpc({"op": "feed", "session": "s"})  # missing sample
            assert bad["ok"] is False and bad["error_type"] == "KeyError"
            garbage = rpc("not an object")
            assert garbage["ok"] is False
            assert rpc({"op": "shutdown"})["stopping"] is True
        thread.join(timeout=30)
        assert not thread.is_alive()
        # Shutdown persisted the live session's user state.
        assert SessionStateStore(tmp_path / "state").users == [profile.user_id]


SERVE_SCRIPT = """\
import sys
state_dir, log_path = sys.argv[1], sys.argv[2]
from conftest import _linear_training_dataset
from repro.api.specs import AdapterSpec, ManagerSpec, PolicySpec
from repro.core.predictor import RuntimePredictor
from repro.fleet import PolicyService, SessionStateStore, run_service
from repro.ml.linear import LinearRegression
from repro.users import paper_population

predictor = RuntimePredictor(
    skin_model=LinearRegression().fit(_linear_training_dataset(5.0)),
    screen_model=LinearRegression().fit(_linear_training_dataset(7.0)),
)
policy = PolicySpec(manager=ManagerSpec("usta"), adapter=AdapterSpec("quantile_tracker"))
service = PolicyService(
    policy,
    profiles={p.user_id: p for p in paper_population()},
    predictor=predictor,
    state_store=SessionStateStore(state_dir),
    decision_log=log_path,
)
run_service(service, "127.0.0.1", 0, checkpoint_period_s=None)
"""


class TestGracefulShutdownUnderSigterm:
    def test_sigterm_flushes_decision_log_and_persists_state(
        self, tmp_path, linear_predictor
    ):
        """Satellite: kill a live server with SIGTERM; the buffered decision
        log must land complete on disk and the user's state must persist —
        then a warm restart resumes at the persisted limit."""
        script = tmp_path / "serve_under_test.py"
        script.write_text(SERVE_SCRIPT, encoding="utf-8")
        state_dir = tmp_path / "state"
        log_path = tmp_path / "decisions.jsonl"
        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo / "src"), str(repo / "tests")]
        )
        proc = subprocess.Popen(
            [sys.executable, str(script), str(state_dir), str(log_path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, (banner, proc.stderr.read())
            _, _, addr = banner.rpartition(" ")
            host, _, port = addr.strip().rpartition(":")

            profile = _profile()
            feeds = 25
            with socket.create_connection((host, int(port)), timeout=30) as conn:
                fh = conn.makefile("rwb")

                def rpc(request):
                    fh.write(json.dumps(request).encode() + b"\n")
                    fh.flush()
                    return json.loads(fh.readline())

                assert rpc({"op": "open", "session": "s", "user": profile.user_id})["ok"]
                for i in range(feeds):
                    response = rpc(
                        {
                            "op": "feed",
                            "session": "s",
                            "sample": _wire_sample(i * 3.0),
                            "feedback": [_discomfort(i * 3.0)],
                        }
                    )
                    assert response["ok"], response
                    limit = response["decision"]["comfort_limit_c"]

                # The log is buffered on purpose: nothing must be on disk yet,
                # so the flush observed after SIGTERM is the shutdown's doing.
                assert not log_path.exists() or log_path.stat().st_size == 0

                proc.send_signal(signal.SIGTERM)
                assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover - only on test failure
                proc.kill()
                proc.wait(timeout=10)

        # 1. Every buffered decision line was flushed, none torn.
        lines = log_path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == feeds
        assert all(json.loads(line)["session"] == "s" for line in lines)

        # 2. The user's converged state survived the kill ...
        store = SessionStateStore(state_dir)
        assert store.users == [profile.user_id]
        persisted = store.state_for(profile.user_id)
        assert persisted["limit_c"] == pytest.approx(limit)

        # 3. ... and a warm restart opens at it.
        service = PolicyService(
            TRACKER_POLICY,
            profiles={profile.user_id: profile},
            predictor=linear_predictor,
            state_store=store,
        )
        reopened = service.open("again", profile.user_id)
        assert reopened["resumed"] is True
        assert reopened["limit_c"] == persisted["limit_c"]


class TestFleetCliFlags:
    def test_fleet_requires_stream_to(self):
        with pytest.raises(SystemExit, match="--fleet needs --stream-to"):
            main(["sweep", "--fleet", "2"])

    def test_fleet_only_applies_to_sweep(self):
        with pytest.raises(SystemExit, match="--fleet only applies"):
            main(["fig1", "--fleet", "2"])

    def test_fleet_conflicts_with_jobs(self):
        with pytest.raises(SystemExit, match="--fleet and --jobs"):
            main(["sweep", "--fleet", "2", "--jobs", "2", "--stream-to", "out"])

    def test_fleet_must_be_positive(self):
        with pytest.raises(SystemExit, match="at least 1"):
            main(["sweep", "--fleet", "0", "--stream-to", "out"])

    def test_listen_only_applies_to_serve(self):
        with pytest.raises(SystemExit, match="--listen only applies"):
            main(["sweep", "--listen", "127.0.0.1:0"])

    def test_state_dir_needs_listen(self):
        with pytest.raises(SystemExit, match="--state-dir needs"):
            main(["serve", "--state-dir", "state"])
