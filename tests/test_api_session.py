"""Tests for the online policy interface: sessions, pools, and serve."""

import numpy as np
import pytest

from repro.api.serve import replay_telemetry, run_serve
from repro.api.session import PolicySession, SessionPool, open_session
from repro.api.specs import AdapterSpec, GovernorSpec, ManagerSpec, PolicySpec
from repro.api.types import CapDecision, FeedbackEvent, TelemetrySample
from repro.core.usta import USTAController
from repro.device.freq_table import nexus4_frequency_table
from repro.device.platform import DevicePlatform
from repro.governors.ondemand import OndemandGovernor
from repro.sim.engine import Simulator
from repro.users.adaptation import WARM_START_TEMPS as WARM_TEMPS, UserFeedbackModel
from repro.workloads.benchmarks import build_benchmark

TABLE = nexus4_frequency_table()


def _sample(time_s, cpu_temp_c, utilization=0.5, frequency_khz=1_512_000.0):
    return TelemetrySample(
        time_s=time_s,
        utilization=utilization,
        frequency_khz=frequency_khz,
        sensor_readings={"cpu": cpu_temp_c, "battery": cpu_temp_c - 2.5},
    )


class TestPolicySession:
    def test_bare_governor_session_never_caps(self):
        session = open_session(PolicySpec(governor=GovernorSpec("ondemand")))
        decision = session.feed(_sample(1.0, 45.0))
        assert decision == CapDecision.no_cap()
        assert session.feed_count == 1
        assert session.capped_fraction == 0.0

    def test_usta_session_caps_when_prediction_nears_limit(self, linear_predictor):
        # linear_predictor: skin ≈ cpu − 5 °C.  Limit 37 → margin bands sit at
        # cpu ≈ 39/40/41.5 °C.
        spec = PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}))
        session = open_session(spec, predictor=linear_predictor)

        cold = session.feed(_sample(1.0, 30.0))
        assert not cold.active

        warm = session.feed(_sample(4.0, 41.2))  # margin ≈ 0.8 °C → two levels down
        assert warm.level_cap == TABLE.max_level - 2
        assert warm.max_frequency_khz == TABLE.frequency_at(TABLE.max_level - 2)
        assert warm.predicted_skin_temp_c == pytest.approx(36.2, abs=0.2)

        # Between prediction windows the cap is held and no new prediction runs.
        held = session.feed(_sample(5.0, 20.0))
        assert held.level_cap == warm.level_cap
        assert session.manager.prediction_count == 2

    def test_session_accepts_dict_spec_and_profile(self, linear_predictor, small_context):
        profile = small_context.population["g"]
        session = open_session(
            {"governor": "ondemand", "manager": {"name": "usta"}},
            user_profile=profile,
            predictor=linear_predictor,
            session_id="g-0",
        )
        assert session.manager.skin_limit_c == profile.skin_limit_c
        assert session.session_id == "g-0"

    def test_reset_clears_session_and_manager_state(self, linear_predictor):
        spec = PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}))
        session = open_session(spec, predictor=linear_predictor)
        session.feed(_sample(1.0, 41.2))
        assert session.last_decision is not None
        session.reset()
        assert session.last_decision is None
        assert session.feed_count == 0
        assert session.manager.prediction_count == 0

    def test_kernel_and_session_agree(self, linear_predictor):
        # The same telemetry through a standalone session and through a
        # direct controller must decide identically (the kernel path).
        spec = PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}))
        session = open_session(spec, predictor=linear_predictor)
        controller = USTAController(predictor=linear_predictor, skin_limit_c=37.0)
        for t, cpu in ((1.0, 30.0), (4.0, 40.5), (7.0, 42.0), (8.0, 42.0)):
            sample = _sample(t, cpu)
            decision = session.feed(sample)
            manual = controller.observe(
                time_s=t,
                sensor_readings=sample.sensor_readings,
                utilization=sample.utilization,
                frequency_khz=sample.frequency_khz,
            )
            assert decision.level_cap == manual.level_cap
            assert decision.predicted_skin_temp_c == manual.predicted_skin_temp_c


class TestSessionPool:
    def _pool(self, linear_predictor, population, n=20):
        spec = PolicySpec(manager=ManagerSpec("usta"))
        pool = SessionPool()
        profiles = list(population)
        for index in range(n):
            profile = profiles[index % len(profiles)]
            pool.open(
                f"{profile.user_id}-{index}",
                spec,
                user_profile=profile,
                predictor=linear_predictor,
            )
        return pool

    def test_duplicate_session_id_rejected(self, linear_predictor, small_context):
        pool = self._pool(linear_predictor, small_context.population, n=1)
        session_id = next(iter(pool)).session_id
        with pytest.raises(ValueError, match="duplicate session id"):
            pool.open(session_id, PolicySpec(), predictor=linear_predictor)

    def test_batched_predictions_match_scalar_sessions(self, linear_predictor, small_context):
        telemetry = [
            _sample(float(t + 1), 34.0 + 0.45 * t, utilization=0.6) for t in range(24)
        ]
        pool = self._pool(linear_predictor, small_context.population, n=20)

        # The same 20 users, fed one by one through scalar sessions.
        spec = PolicySpec(manager=ManagerSpec("usta"))
        profiles = list(small_context.population)
        scalar_sessions = {
            f"{profiles[i % len(profiles)].user_id}-{i}": open_session(
                spec, user_profile=profiles[i % len(profiles)], predictor=linear_predictor
            )
            for i in range(20)
        }

        for sample in telemetry:
            pooled = pool.feed_all(sample)
            for session_id, session in scalar_sessions.items():
                scalar = session.feed(sample)
                assert pooled[session_id].level_cap == scalar.level_cap
                if scalar.predicted_skin_temp_c is None:
                    assert pooled[session_id].predicted_skin_temp_c is None
                else:
                    assert pooled[session_id].predicted_skin_temp_c == pytest.approx(
                        scalar.predicted_skin_temp_c, abs=1e-9
                    )

        # Every prediction went through the batched path: one batch per due
        # tick (t = 1, 4, 7, ... — 8 ticks over 24 s), all 20 sessions each.
        assert pool.batch_count == 8
        assert pool.prediction_count == 8 * 20
        assert pool.average_batch_size == 20.0
        assert pool.feed_count == 20 * len(telemetry)

    def test_observe_overriding_subclass_skips_batched_path(self, linear_predictor):
        class PinnedObserveManager(USTAController):
            """Overrides observe() itself — the batched split must not bypass it."""

            def observe(self, time_s, sensor_readings, utilization, frequency_khz):
                decision = super().observe(time_s, sensor_readings, utilization, frequency_khz)
                return type(decision)(level_cap=0)  # always pin to the minimum level

        pool = SessionPool()
        session = PolicySession(
            manager=PinnedObserveManager(predictor=linear_predictor, skin_limit_c=37.0),
            session_id="pinned",
        )
        pool._sessions["pinned"] = session
        decisions = pool.feed_all(_sample(1.0, 30.0))
        # The override's pinned cap survives, and nothing went through a batch.
        assert decisions["pinned"].level_cap == 0
        assert pool.batch_count == 0
        assert pool.prediction_count == 0

    def test_feed_many_routes_per_session_samples(self, linear_predictor, small_context):
        pool = self._pool(linear_predictor, small_context.population, n=2)
        ids = [s.session_id for s in pool]
        decisions = pool.feed_many(
            {ids[0]: _sample(1.0, 30.0), ids[1]: _sample(1.0, 50.0)}
        )
        assert list(decisions) == ids
        assert not decisions[ids[0]].active
        assert decisions[ids[1]].active  # 45 °C prediction is over any limit

    def test_feed_many_rejects_unknown_session_ids(self, linear_predictor, small_context):
        """Regression: unknown ids used to surface as a bare dict KeyError; now
        they fail with a known-ids hint, before any session consumes a sample."""
        pool = self._pool(linear_predictor, small_context.population, n=2)
        ids = [s.session_id for s in pool]
        with pytest.raises(KeyError, match="unknown session id 'ghost'") as exc_info:
            pool.feed_many({ids[0]: _sample(1.0, 30.0), "ghost": _sample(1.0, 30.0)})
        assert "known session ids" in str(exc_info.value)
        assert ids[0] in str(exc_info.value)
        # The known session was not half-fed by the failed batch.
        assert pool.get(ids[0]).feed_count == 0
        assert pool.feed_count == 0

    def test_get_and_close_share_the_known_ids_hint(self, linear_predictor, small_context):
        pool = self._pool(linear_predictor, small_context.population, n=1)
        with pytest.raises(KeyError, match="known session ids"):
            pool.get("ghost")
        with pytest.raises(KeyError, match="known session ids"):
            pool.close("ghost")
        empty = SessionPool()
        with pytest.raises(KeyError, match="the pool is empty"):
            empty.get("ghost")


class TestAdaptiveSessionParity:
    """A PolicySession fed sample-by-sample with explicit feedback events must
    produce bit-identical cap decisions to the same adapter running inside
    SimulationKernel (where the simulated user reports internally)."""

    REPORT_PERIOD_S = 9.0
    TRUE_LIMIT_C = 34.3  # user b

    def _adaptive_spec(self, with_feedback: bool) -> PolicySpec:
        feedback = (
            {"true_limit_c": self.TRUE_LIMIT_C, "report_period_s": self.REPORT_PERIOD_S}
            if with_feedback
            else None
        )
        return PolicySpec(
            manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}),
            adapter=AdapterSpec(
                "feedback_step",
                params={"step_down_c": 0.5, "hold_off_s": 15.0},
                feedback=feedback,
            ),
        )

    def test_session_with_external_feedback_matches_kernel(self, linear_predictor):
        trace = build_benchmark("skype", seed=0, duration_s=150)

        # Closed loop through the kernel: the wrapper generates the feedback
        # internally from each step's skin sensor reading.
        platform = DevicePlatform(seed=0)
        kernel_manager = self._adaptive_spec(with_feedback=True).build_manager(
            predictor=linear_predictor
        )
        simulator = Simulator(
            platform=platform,
            governor=OndemandGovernor(table=platform.freq_table),
            thermal_manager=kernel_manager,
        )
        result = simulator.run(trace, initial_temps=dict(WARM_TEMPS))

        # The kernel must have exercised the loop, or this parity test is vacuous.
        kernel_limits = [r.comfort_limit_c for r in result.records]
        assert len(set(kernel_limits)) > 1

        # Open a standalone session over the same policy *without* the internal
        # feedback model, and replay the kernel's telemetry with the feedback
        # events computed externally by an identical user model.
        session = open_session(
            self._adaptive_spec(with_feedback=False), predictor=linear_predictor
        )
        user = UserFeedbackModel(
            true_limit_c=self.TRUE_LIMIT_C, report_period_s=self.REPORT_PERIOD_S
        )
        for record in result.records:
            sample = TelemetrySample.from_step_record(record)
            event = user.observe(sample.time_s, sample.sensor_readings["skin"])
            decision = session.feed(sample, feedback=[event] if event else [])
            # Bit-identical live limit and cap at every step.
            assert decision.comfort_limit_c == record.comfort_limit_c
            assert session.current_limit_c == record.comfort_limit_c
            applied = decision.level_cap if decision.level_cap is not None else TABLE.max_level
            assert applied == record.level_cap

    def test_feedback_into_adapterless_policy_is_an_error(self, linear_predictor):
        spec = PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}))
        session = open_session(spec, predictor=linear_predictor)
        with pytest.raises(ValueError, match="no comfort adapter"):
            session.feed(_sample(1.0, 30.0), feedback=[FeedbackEvent.discomfort(1.0, 36.0)])
        assert session.current_limit_c == 37.0  # static limit still exposed

    def test_pooled_adaptive_sessions_batch_and_match_scalar(self, linear_predictor):
        """Adaptive wrappers stay on the pool's batched-prediction path and
        decide identically to standalone scalar sessions."""
        spec = self._adaptive_spec(with_feedback=True)
        pool = SessionPool()
        scalar = []
        for index in range(8):
            pool.open(f"s-{index}", spec, predictor=linear_predictor)
            scalar.append(open_session(spec, predictor=linear_predictor))
        # Ramp the replayed skin temperature through the user's true limit so
        # feedback fires while predictions are due.
        for t in range(30):
            sample = TelemetrySample(
                time_s=float(t + 1),
                utilization=0.6,
                frequency_khz=1_512_000.0,
                sensor_readings={
                    "cpu": 36.0 + 0.3 * t,
                    "battery": 34.0 + 0.3 * t,
                    "skin": 31.0 + 0.3 * t,
                },
            )
            pooled = pool.feed_all(sample)
            for index, session in enumerate(scalar):
                decision = session.feed(sample)
                assert pooled[f"s-{index}"].level_cap == decision.level_cap
                assert pooled[f"s-{index}"].comfort_limit_c == decision.comfort_limit_c
        # The predictions went through batches (not 8 scalar predicts per tick)
        # and the feedback loop actually moved the limit.
        assert pool.batch_count == 10  # due every 3 s over 30 s
        assert pool.average_batch_size == 8.0
        assert pool.get("s-0").current_limit_c < 37.0

    def test_feed_many_carries_external_feedback_on_the_batched_path(
        self, linear_predictor
    ):
        """External comfort reports passed to feed_many ride the batched
        prediction path and decide bit-identically to scalar feed(sample,
        feedback=...) calls."""
        spec = self._adaptive_spec(with_feedback=False)  # external feedback only
        pool = SessionPool()
        scalar = []
        for index in range(6):
            pool.open(f"s-{index}", spec, predictor=linear_predictor)
            scalar.append(open_session(spec, predictor=linear_predictor))
        users = [
            UserFeedbackModel(
                true_limit_c=self.TRUE_LIMIT_C, report_period_s=self.REPORT_PERIOD_S
            )
            for _ in range(2 * 6)
        ]
        for t in range(30):
            skin = 31.0 + 0.3 * t
            sample = TelemetrySample(
                time_s=float(t + 1),
                utilization=0.6,
                frequency_khz=1_512_000.0,
                sensor_readings={"cpu": skin + 5.0, "battery": skin + 3.0, "skin": skin},
            )
            feedback = {}
            for index in range(6):
                event = users[index].observe(sample.time_s, skin)
                if event is not None:
                    feedback[f"s-{index}"] = [event]
            pooled = pool.feed_many({f"s-{i}": sample for i in range(6)}, feedback=feedback)
            for index, session in enumerate(scalar):
                event = users[6 + index].observe(sample.time_s, skin)
                decision = session.feed(sample, feedback=[event] if event else [])
                assert pooled[f"s-{index}"].level_cap == decision.level_cap
                assert pooled[f"s-{index}"].comfort_limit_c == decision.comfort_limit_c
        # Still batched (one matrix predict per due tick), and the external
        # reports moved the limit.
        assert pool.batch_count == 10
        assert pool.average_batch_size == 6.0
        assert pool.get("s-0").current_limit_c != 37.0

    def test_feed_many_rejects_feedback_without_a_sample(self, linear_predictor):
        pool = SessionPool()
        pool.open("a", self._adaptive_spec(with_feedback=False), predictor=linear_predictor)
        pool.open("b", self._adaptive_spec(with_feedback=False), predictor=linear_predictor)
        with pytest.raises(KeyError, match="without a telemetry sample"):
            pool.feed_many(
                {"a": _sample(1.0, 30.0)},
                feedback={"b": [FeedbackEvent.discomfort(1.0, 36.0)]},
            )

    def test_bad_feedback_batch_has_no_effect(self, linear_predictor):
        """Feedback aimed at an adapterless session fails the whole batch up
        front — the adaptive session's limit must not have moved."""
        pool = SessionPool()
        pool.open("adaptive", self._adaptive_spec(with_feedback=False), predictor=linear_predictor)
        pool.open(
            "bare",
            PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 37.0})),
            predictor=linear_predictor,
        )
        sample = _sample(3.0, 30.0)
        with pytest.raises(ValueError, match="no comfort adapter"):
            pool.feed_many(
                {"adaptive": sample, "bare": sample},
                feedback={
                    "adaptive": [FeedbackEvent.discomfort(3.0, 36.0)],
                    "bare": [FeedbackEvent.discomfort(3.0, 36.0)],
                },
            )
        assert pool.get("adaptive").current_limit_c == 37.0  # untouched
        assert pool.get("adaptive").feed_count == 0
        assert pool.feed_count == 0

    def test_pool_routes_feedback_by_session_id(self, linear_predictor):
        pool = SessionPool()
        pool.open(
            "b-0",
            self._adaptive_spec(with_feedback=False),
            predictor=linear_predictor,
        )
        limit = pool.feed_feedback("b-0", FeedbackEvent.discomfort(20.0, 36.0))
        assert limit == pytest.approx(36.5)
        assert pool.get("b-0").current_limit_c == pytest.approx(36.5)
        with pytest.raises(KeyError, match="unknown session id"):
            pool.feed_feedback("ghost", FeedbackEvent.discomfort(20.0, 36.0))


class TestServe:
    def test_replay_telemetry_matches_trace_length(self):
        trace = build_benchmark("skype", seed=3, duration_s=60)
        telemetry = replay_telemetry(trace, seed=3)
        assert len(telemetry) == len(trace)
        assert {"cpu", "battery", "skin", "screen"} <= set(telemetry[0].sensor_readings)

    def test_run_serve_reports_population_stats(self, small_context):
        report = run_serve(small_context, benchmark="skype", duration_s=120, sessions=25)
        assert report.n_sessions == 25
        assert report.n_steps == 120
        assert report.feed_count == 25 * 120
        # Predictions are due every 3 s → 40 due ticks, each one batch.
        assert report.batch_count == 40
        assert report.prediction_count == 25 * 40
        assert report.average_batch_size == 25.0
        rendered = report.render()
        assert "25 sessions x 120 telemetry steps" in rendered
        assert "avg batch 25.0 sessions" in rendered

    def test_run_serve_with_bare_governor_policy(self, small_context):
        report = run_serve(
            small_context,
            benchmark="skype",
            duration_s=30,
            sessions=5,
            policy=PolicySpec(governor=GovernorSpec("ondemand")),
        )
        assert report.prediction_count == 0
        assert report.capped_sessions == 0
        assert report.policy_label == "ondemand"

    def test_run_serve_rejects_empty_population(self, small_context):
        with pytest.raises(ValueError, match="at least 1"):
            run_serve(small_context, sessions=0)
