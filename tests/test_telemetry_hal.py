"""Real-device telemetry: HAL dump parsing, trace replay, trip-point manager."""

import json
import math

import pytest

from repro.analysis.hal_comparison import (
    hal_comparison,
    ladder_for_limit,
    render_hal_comparison,
    user_trip_ladders,
)
from repro.api.session import SessionPool, open_session
from repro.api.specs import ManagerSpec, PolicySpec, SpecError
from repro.device.freq_table import nexus4_frequency_table
from repro.telemetry import (
    DEFAULT_SKIN_TRIPS_C,
    HalParseError,
    HalReplayError,
    ThresholdLadder,
    TripPointManager,
    describe_hal_trace,
    hal_telemetry,
    load_hal_trace,
    parse_thermal_dump,
    trace_thresholds,
)
TABLE = nexus4_frequency_table()

DUMP = """\
IsStatusOverride: false
Thermal Status: 1
Cached temperatures:
\tTemperature{mValue=0.0, mType=2, mName=SUBBAT, mStatus=0}
\tTemperature{mValue=37.2, mType=3, mName=SKIN, mStatus=0}
\tTemperature{mValue=44.0, mType=0, mName=AP, mStatus=0}
HAL Ready: true
Current temperatures from HAL:
\tTemperature{mValue=45.1, mType=0, mName=AP, mStatus=0}
\tTemperature{mValue=31.5, mType=2, mName=BAT, mStatus=0}
\tTemperature{mValue=38.8, mType=9, mName=NPU, mStatus=0}
Current cooling devices from HAL:
Temperature static thresholds from HAL:
\tTemperatureThreshold{mType=3, mName=SKIN, mHotThrottlingThresholds=[36.0, 38.0, 40.0, 42.0, 45.0, NaN, NaN], mColdThrottlingThresholds=[NaN, NaN, NaN, NaN, NaN, NaN, NaN]}
\tTemperatureThreshold{mType=2, mName=BAT, mHotThrottlingThresholds=[NaN, NaN, NaN, NaN, NaN, 55.0, 85.0], mColdThrottlingThresholds=[NaN, NaN, NaN, NaN, NaN, NaN, NaN]}
"""


class TestParser:
    def test_parses_cached_and_current_blocks(self):
        dump = parse_thermal_dump(DUMP)
        assert dump.thermal_status == 1
        assert dump.hal_ready is True
        assert {t.name for t in dump.cached} == {"SUBBAT", "SKIN", "AP"}
        assert {t.name for t in dump.current} == {"AP", "BAT", "NPU"}
        assert not dump.warnings

    def test_current_reading_wins_over_cached(self):
        dump = parse_thermal_dump(DUMP)
        merged = dump.temperatures
        assert merged["AP"].value_c == 45.1  # current 45.1 beats cached 44.0
        assert merged["SKIN"].value_c == 37.2  # cached-only channel survives

    def test_placeholder_and_unknown_sensors_are_kept_but_flagged(self):
        dump = parse_thermal_dump(DUMP)
        subbat = dump.temperatures["SUBBAT"]
        assert subbat.is_placeholder and not subbat.is_usable
        # Unknown sensor names (NPU) must pass through untouched, not crash.
        assert dump.temperatures["NPU"].is_usable

    def test_threshold_ladder_nan_padding(self):
        dump = parse_thermal_dump(DUMP)
        skin = dump.threshold_for("SKIN")
        assert skin.n_trips == 5
        assert [v for _, v in skin.finite_trips()] == list(DEFAULT_SKIN_TRIPS_C)
        assert skin.top_trip_c == 45.0
        bat = dump.threshold_for("BAT")
        assert bat.n_trips == 2  # NaN-led ladder: only the last two slots real

    def test_truncated_temperature_entry_warns_but_parses_rest(self):
        torn = DUMP.replace(
            "Temperature{mValue=31.5, mType=2, mName=BAT, mStatus=0}",
            "Temperature{mValue=31.5, mType=2, mName=BAT",
        )
        dump = parse_thermal_dump(torn)
        assert any("truncated" in w for w in dump.warnings)
        assert "BAT" not in {t.name for t in dump.current}
        assert dump.temperatures["AP"].value_c == 45.1  # rest of block intact

    def test_empty_dump_is_an_error(self):
        with pytest.raises(HalParseError):
            parse_thermal_dump("   \n  ")

    def test_severity_counts_crossed_trips(self):
        ladder = ThresholdLadder("SKIN", DEFAULT_SKIN_TRIPS_C)
        assert ladder.severity_for(35.0) == 0
        assert ladder.severity_for(36.0) == 1
        assert ladder.severity_for(41.9) == 3
        assert ladder.severity_for(99.0) == 5
        with pytest.raises(ValueError, match="finite"):
            ladder.severity_for(float("nan"))

    def test_all_nan_ladder_never_trips(self):
        ladder = ThresholdLadder("DEAD", (float("nan"),) * 7)
        assert ladder.n_trips == 0
        assert ladder.severity_for(500.0) == 0

    def test_shifted_moves_finite_slots_only(self):
        ladder = ThresholdLadder("SKIN", (36.0, float("nan"), 45.0))
        shifted = ladder.shifted(-2.0)
        assert shifted.hot_thresholds_c[0] == 34.0
        assert math.isnan(shifted.hot_thresholds_c[1])
        assert shifted.top_trip_c == 43.0


class TestReplay:
    @pytest.fixture(scope="class")
    def fixture_dir(self):
        import pathlib

        return pathlib.Path(__file__).parent / "data" / "hal_dumps"

    def test_directory_timestamps_from_filenames(self, fixture_dir):
        steps = load_hal_trace(fixture_dir)
        assert [s.time_s for s in steps] == [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]

    def test_cached_fallback_and_placeholder_drop(self, fixture_dir):
        steps = load_hal_trace(fixture_dir)
        # dump_0020 only reports SKIN in the cached block.
        assert steps[2].sensors["SKIN"] == 38.3
        # dump_0030 reports the 0.0 placeholder: the channel must be absent.
        assert "SKIN" not in steps[3].sensors

    def test_interpolation_bridges_the_placeholder_hole(self, fixture_dir):
        telemetry = hal_telemetry(load_hal_trace(fixture_dir))
        assert len(telemetry) == 6
        skin = [s.sensor_readings["skin"] for s in telemetry]
        assert skin[2] == 38.3
        assert skin[3] == pytest.approx(40.05)  # midway between 38.3 and 41.8
        assert all(math.isfinite(v) for s in telemetry for v in s.sensor_readings.values())

    def test_interpolate_false_refuses_holes(self, fixture_dir):
        with pytest.raises(HalReplayError, match="missing reading"):
            hal_telemetry(load_hal_trace(fixture_dir), interpolate=False)

    def test_missing_required_channel_is_loud(self, fixture_dir):
        steps = load_hal_trace(fixture_dir)
        skinless = [
            type(step)(
                time_s=step.time_s,
                sensors={"SKIN": step.sensors.get("SKIN", 35.0)},
                dump=None,
                utilization=step.utilization,
                frequency_khz=step.frequency_khz,
                source=step.source,
            )
            for step in steps
        ]
        with pytest.raises(HalReplayError) as err:
            hal_telemetry(skinless)
        assert "cpu" in str(err.value) and "SKIN" in str(err.value)

    def test_jsonl_trace_loads_and_filters_placeholders(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            {"time_s": 0.0, "sensors": {"AP": 40.0, "BAT": 30.0, "SKIN": 35.0}},
            {
                "time_s": 5.0,
                "utilization": 0.5,
                "frequency_khz": 1_026_000,
                "sensors": {"AP": 41.0, "BAT": 30.5, "SKIN": 0.0, "USB": 0.0},
            },
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        steps = load_hal_trace(path)
        assert [s.time_s for s in steps] == [0.0, 5.0]
        assert steps[1].utilization == 0.5
        assert "SKIN" not in steps[1].sensors and "USB" not in steps[1].sensors
        telemetry = hal_telemetry(steps)
        assert telemetry[1].sensor_readings["skin"] == 35.0  # edge-extended

    def test_trace_thresholds_and_describe(self, fixture_dir):
        steps = load_hal_trace(fixture_dir)
        ladders = trace_thresholds(steps)
        assert set(ladders) == {"SKIN", "BAT"}
        text = describe_hal_trace(steps)
        assert "SKIN" in text and "skin" in text
        assert "torn" in text  # dump_0050 carries a truncated entry


class TestTripPointManager:
    def _sample_readings(self, skin):
        return {"skin": skin, "cpu": skin + 10.0, "battery": skin - 3.0}

    def test_caps_step_down_per_severity(self):
        manager = TripPointManager()
        cases = {
            35.0: None,
            36.5: TABLE.max_level - 2,
            38.5: TABLE.max_level - 4,
            43.0: TABLE.max_level - 8,
            46.0: TABLE.min_level,
        }
        for temp, expected in cases.items():
            decision = manager.observe(0.0, self._sample_readings(temp), 0.5, 1_512_000.0)
            assert decision.level_cap == expected, temp

    def test_requires_predictor_is_false(self):
        assert TripPointManager.requires_predictor is False
        assert TripPointManager(predictor=None) is not None

    def test_missing_channel_error_lists_available(self):
        manager = TripPointManager()
        with pytest.raises(ValueError) as err:
            manager.observe(3.0, {"cpu": 40.0, "battery": 30.0}, 0.5, 1_512_000.0)
        message = str(err.value)
        assert "skin" in message and "cpu" in message

    def test_non_finite_reading_error_names_channel_and_time(self):
        manager = TripPointManager()
        with pytest.raises(ValueError) as err:
            manager.observe(7.0, self._sample_readings(float("nan")), 0.5, 1_512_000.0)
        message = str(err.value)
        assert "skin" in message and "7.0" in message

    def test_unsorted_trips_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            TripPointManager(hot_thresholds_c=[40.0, 38.0])

    def test_from_all_nan_ladder_never_caps(self):
        manager = TripPointManager.from_ladder(ThresholdLadder("X", (float("nan"),) * 7))
        decision = manager.observe(0.0, self._sample_readings(80.0), 0.5, 1_512_000.0)
        assert decision.level_cap is None

    def test_reset_clears_severity(self):
        manager = TripPointManager()
        manager.observe(0.0, self._sample_readings(41.0), 0.5, 1_512_000.0)
        assert manager.current_severity == 3
        manager.reset()
        assert manager.current_severity == 0


class TestTripPointSpec:
    def test_spec_round_trip_builds_without_predictor(self):
        spec = PolicySpec(
            manager=ManagerSpec(
                "trip-point",
                params={"hot_thresholds_c": [36.0, 38.0], "levels_per_trip": 3},
            )
        )
        rebuilt = PolicySpec.from_json(spec.to_json())
        session = open_session(rebuilt)  # no predictor supplied on purpose
        decision = session.feed(_hal_sample(0.0, skin=37.0))  # crosses trip 1 only
        assert decision.level_cap == TABLE.max_level - 3
        # Past the whole ladder the cap floors at the slowest level.
        assert session.feed(_hal_sample(1.0, skin=39.0)).level_cap == TABLE.min_level

    def test_predictor_needing_manager_still_fails_loudly(self):
        with pytest.raises(SpecError, match="predictor"):
            ManagerSpec("usta").build(predictor=None)


def _hal_sample(time_s, skin, cpu=None, battery=None):
    from repro.api.types import TelemetrySample

    return TelemetrySample(
        time_s=time_s,
        utilization=0.8,
        frequency_khz=1_512_000.0,
        sensor_readings={
            "skin": skin,
            "cpu": cpu if cpu is not None else skin + 12.0,
            "battery": battery if battery is not None else skin - 4.0,
        },
    )


class TestScalarPoolParity:
    def test_hal_replay_bit_identical_scalar_vs_feed_many(self, linear_predictor):
        """CapDecisions must round-trip bit-identically through both paths."""
        import pathlib

        telemetry = hal_telemetry(
            load_hal_trace(pathlib.Path(__file__).parent / "data" / "hal_dumps")
        )
        specs = {
            "usta": PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 39.0})),
            "trip": PolicySpec(manager=ManagerSpec("trip-point")),
        }
        scalar = {
            name: open_session(spec, predictor=linear_predictor)
            for name, spec in specs.items()
        }
        pool = SessionPool()
        for name, spec in specs.items():
            pool.open(name, spec, predictor=linear_predictor)
        for sample in telemetry:
            want = {name: session.feed(sample) for name, session in scalar.items()}
            got = pool.feed_many({name: sample for name in specs})
            assert got == want


class TestHalComparison:
    @pytest.fixture(scope="class")
    def telemetry(self):
        import pathlib

        return hal_telemetry(
            load_hal_trace(pathlib.Path(__file__).parent / "data" / "hal_dumps")
        )

    def test_ladder_for_limit_anchors_top_trip(self):
        ladder = ladder_for_limit(40.0)
        assert ladder.top_trip_c == 40.0
        assert [v for _, v in ladder.finite_trips()] == [31.0, 33.0, 35.0, 37.0, 40.0]

    def test_user_trip_ladders_cover_population_plus_default(self):
        ladders = user_trip_ladders()
        assert len(ladders) == 11
        assert all(l.n_trips == 5 for l in ladders.values())

    def test_comparison_scores_all_schemes_for_all_users(self, small_context, telemetry):
        points = hal_comparison(small_context, telemetry)
        assert len(points) == 33  # 11 profiles x 3 schemes
        schemes = {p.scheme for p in points}
        assert schemes == {"trip-stock", "trip-user", "usta"}
        # The stock ladder ignores the user entirely: identical loss everywhere.
        stock_losses = {p.throughput_loss for p in points if p.scheme == "trip-stock"}
        assert len(stock_losses) == 1
        text = render_hal_comparison(points)
        assert "mean" in text and "trip-user" in text

    def test_comparison_requires_skin_channel(self, small_context):
        sample = _hal_sample(0.0, skin=35.0)
        skinless = type(sample)(
            time_s=0.0,
            utilization=0.8,
            frequency_khz=1_512_000.0,
            sensor_readings={"cpu": 45.0, "battery": 30.0},
        )
        with pytest.raises(ValueError, match="skin"):
            hal_comparison(small_context, [skinless])

    def test_comparison_rejects_empty_telemetry(self, small_context):
        with pytest.raises(ValueError, match="empty"):
            hal_comparison(small_context, [])
