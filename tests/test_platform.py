"""Tests for the integrated device platform."""

import pytest

from repro.device.platform import DeviceActivity, DevicePlatform
from repro.thermal.nexus4 import BACK_COVER_NODE, CPU_NODE, SCREEN_NODE


HEAVY = DeviceActivity(cpu_demand=1.0, gpu_activity=0.5, radio_activity=0.5, brightness=0.9)
IDLE = DeviceActivity(cpu_demand=0.0, gpu_activity=0.0, radio_activity=0.0, screen_on=False, brightness=0.0)


class TestStep:
    def test_step_advances_time(self, platform):
        platform.step(IDLE, dt_s=2.0)
        platform.step(IDLE, dt_s=3.0)
        assert platform.time_s == pytest.approx(5.0)

    def test_step_rejects_non_positive_dt(self, platform):
        with pytest.raises(ValueError):
            platform.step(IDLE, dt_s=0.0)

    def test_result_exposes_paper_quantities(self, platform):
        result = platform.step(HEAVY)
        assert result.skin_temp_c == result.node_temps_c[BACK_COVER_NODE]
        assert result.screen_temp_c == result.node_temps_c[SCREEN_NODE]
        assert result.cpu_temp_c == result.node_temps_c[CPU_NODE]
        assert result.battery_temp_c == result.node_temps_c["battery"]
        assert set(result.sensor_readings_c) >= {"cpu", "battery", "skin", "screen"}

    def test_heavy_load_heats_the_device(self, platform):
        platform.set_frequency_level(platform.freq_table.max_level)
        start = platform.temperatures()[CPU_NODE]
        for _ in range(300):
            platform.step(HEAVY)
        assert platform.temperatures()[CPU_NODE] > start + 3.0
        assert platform.temperatures()[BACK_COVER_NODE] > 23.5

    def test_idle_device_stays_near_ambient(self, platform):
        for _ in range(300):
            platform.step(IDLE)
        assert platform.temperatures()[BACK_COVER_NODE] < 26.0

    def test_power_breakdown_depends_on_activity(self, platform):
        platform.set_frequency_level(platform.freq_table.max_level)
        heavy = platform.step(HEAVY)
        platform.reset()
        platform.set_frequency_level(platform.freq_table.max_level)
        idle = platform.step(IDLE)
        assert heavy.power.total_w > idle.power.total_w + 1.0

    def test_battery_discharges_under_load(self, platform):
        start = platform.battery.state_of_charge
        for _ in range(600):
            platform.step(HEAVY)
        assert platform.battery.state_of_charge < start

    def test_charging_activity_charges_the_battery(self, platform):
        platform.battery.state_of_charge = 0.3
        charging = DeviceActivity(cpu_demand=0.05, screen_on=False, charging=True, touching=False)
        for _ in range(600):
            platform.step(charging)
        assert platform.battery.state_of_charge > 0.3

    def test_utilization_rises_when_frequency_capped(self, platform):
        moderate = DeviceActivity(cpu_demand=0.4)
        platform.set_frequency_level(platform.freq_table.max_level)
        at_max = platform.step(moderate)
        platform.reset()
        platform.set_frequency_level(0)
        at_min = platform.step(moderate)
        assert at_min.cpu_state.utilization > at_max.cpu_state.utilization


class TestFrequencyControl:
    def test_set_and_read_level(self, platform):
        platform.set_frequency_level(4)
        assert platform.frequency_level == 4
        assert platform.frequency_khz == platform.freq_table.frequency_at(4)

    def test_levels_clamped(self, platform):
        platform.set_frequency_level(99)
        assert platform.frequency_level == platform.freq_table.max_level


class TestReset:
    def test_reset_restores_ambient_and_time(self, platform):
        for _ in range(120):
            platform.step(HEAVY)
        platform.reset()
        assert platform.time_s == 0.0
        assert platform.temperatures()[CPU_NODE] == pytest.approx(platform.ambient.air_temp_c)
        assert platform.cpu.backlog == 0.0

    def test_reset_with_initial_temperatures(self, platform):
        platform.reset(initial_temps={CPU_NODE: 40.0})
        assert platform.temperatures()[CPU_NODE] == pytest.approx(40.0)

    def test_reset_gives_reproducible_sensor_noise(self, platform):
        first = platform.step(HEAVY).sensor_readings_c
        platform.reset()
        second = platform.step(HEAVY).sensor_readings_c
        assert first == second

    def test_two_platforms_same_seed_agree(self):
        a = DevicePlatform(seed=11)
        b = DevicePlatform(seed=11)
        ra = [a.step(HEAVY).sensor_readings_c["skin"] for _ in range(10)]
        rb = [b.step(HEAVY).sensor_readings_c["skin"] for _ in range(10)]
        assert ra == rb


class TestHandContact:
    def test_touch_state_follows_activity(self, platform):
        platform.step(DeviceActivity(cpu_demand=0.1, touching=True))
        assert platform.hand.touching
        platform.step(DeviceActivity(cpu_demand=0.1, touching=False))
        assert not platform.hand.touching
