"""Tests for the user population, comfort analysis and satisfaction model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.users import (
    DEFAULT_USER_ID,
    PAPER_USER_IDS,
    ComfortAnalysis,
    RatingModel,
    SessionOutcome,
    ThermalComfortProfile,
    UserPopulation,
    analyse_comfort,
    analyse_for_user,
    discomfort_onset_time,
    paper_population,
    summarize_preferences,
)


class TestPopulation:
    def test_ten_participants(self):
        population = paper_population()
        assert len(population) == 10
        assert population.user_ids == PAPER_USER_IDS

    def test_limits_match_the_paper_spread(self):
        population = paper_population()
        assert population.min_skin_limit_c == pytest.approx(34.0)
        assert population.max_skin_limit_c == pytest.approx(42.8)
        assert population.mean_skin_limit_c == pytest.approx(37.0, abs=0.05)

    def test_default_user_is_the_average(self):
        default = paper_population().default_user()
        assert default.user_id == DEFAULT_USER_ID
        assert default.skin_limit_c == pytest.approx(37.0, abs=0.05)

    def test_with_default_has_eleven_entries(self):
        assert len(paper_population().with_default()) == 11

    def test_lookup_by_id(self):
        population = paper_population()
        assert population["g"].skin_limit_c == pytest.approx(42.8)
        assert population[DEFAULT_USER_ID].user_id == DEFAULT_USER_ID
        assert "a" in population and "zz" not in population
        with pytest.raises(KeyError):
            population["zz"]

    def test_screen_limits_below_skin_limits(self):
        for profile in paper_population():
            assert profile.screen_limit_c < profile.skin_limit_c

    def test_activation_threshold_is_two_degrees_below(self):
        profile = paper_population()["a"]
        assert profile.usta_activation_temp_c == pytest.approx(profile.skin_limit_c - 2.0)

    def test_skin_limits_mapping(self):
        limits = paper_population().skin_limits()
        assert set(limits) == set(PAPER_USER_IDS)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ThermalComfortProfile("x", 10.0, 30.0)
        with pytest.raises(ValueError):
            ThermalComfortProfile("x", 37.0, 70.0)
        with pytest.raises(ValueError):
            ThermalComfortProfile("x", 37.0, 35.0, heat_sensitivity=-1.0)

    def test_population_validation(self):
        with pytest.raises(ValueError):
            UserPopulation(())
        duplicate = (
            ThermalComfortProfile("x", 36.0, 34.0),
            ThermalComfortProfile("x", 37.0, 35.0),
        )
        with pytest.raises(ValueError):
            UserPopulation(duplicate)


class TestComfortAnalysis:
    def test_never_exceeding_the_limit(self):
        analysis = analyse_comfort([30.0, 31.0, 32.0], limit_c=35.0)
        assert analysis.percent_time_over_limit == 0.0
        assert not analysis.ever_uncomfortable
        assert analysis.onset_time_s is None
        assert analysis.peak_exceedance_c == 0.0

    def test_partial_exceedance(self):
        temps = [34.0, 36.0, 38.0, 36.0]
        analysis = analyse_comfort(temps, limit_c=35.0, dt_s=1.0)
        assert analysis.time_over_limit_s == 3.0
        assert analysis.percent_time_over_limit == pytest.approx(75.0)
        assert analysis.peak_temp_c == 38.0
        assert analysis.peak_exceedance_c == pytest.approx(3.0)
        assert analysis.onset_time_s == pytest.approx(1.0)
        assert analysis.ever_uncomfortable

    def test_mean_exceedance_only_counts_overshoot(self):
        analysis = analyse_comfort([34.0, 36.0], limit_c=35.0)
        assert analysis.mean_exceedance_c == pytest.approx(0.5)

    def test_dt_scaling(self):
        analysis = analyse_comfort([36.0, 36.0], limit_c=35.0, dt_s=3.0)
        assert analysis.duration_s == 6.0
        assert analysis.time_over_limit_s == 6.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            analyse_comfort([], limit_c=35.0)
        with pytest.raises(ValueError):
            analyse_comfort([30.0], limit_c=35.0, dt_s=0.0)

    def test_analyse_for_user_uses_skin_limit(self):
        profile = paper_population()["f"]  # 34.0 C
        analysis = analyse_for_user([35.0, 33.0], profile)
        assert analysis.user_id == "f"
        assert analysis.limit_c == pytest.approx(34.0)
        assert analysis.time_over_limit_s == 1.0

    def test_discomfort_onset_time(self):
        ramp = np.linspace(30.0, 40.0, 101)  # 0.1 C per sample
        onset = discomfort_onset_time(ramp, limit_c=35.0, dt_s=1.0)
        assert onset == pytest.approx(51.0, abs=1.0)
        assert discomfort_onset_time(ramp, limit_c=45.0) is None

    @given(limit=st.floats(30.0, 45.0))
    def test_percentage_bounded(self, limit):
        rng = np.random.default_rng(0)
        temps = rng.uniform(28.0, 44.0, 60)
        analysis = analyse_comfort(temps, limit_c=limit)
        assert 0.0 <= analysis.percent_time_over_limit <= 100.0


def make_outcome(scheme, temps, limit, delivered=100.0, demanded=100.0, user="x"):
    return SessionOutcome(
        scheme=scheme,
        comfort=analyse_comfort(temps, limit_c=limit, user_id=user),
        delivered_work=delivered,
        demanded_work=demanded,
    )


class TestRatingModel:
    def test_cool_fast_session_gets_top_rating(self):
        profile = ThermalComfortProfile("x", 37.0, 35.0)
        outcome = make_outcome("baseline", [30.0] * 10, 37.0)
        assert RatingModel().rate(outcome, profile) == 5

    def test_hot_session_rated_lower(self):
        profile = ThermalComfortProfile("x", 37.0, 35.0, heat_sensitivity=1.5)
        cool = make_outcome("baseline", [30.0] * 10, 37.0)
        hot = make_outcome("baseline", [41.0] * 10, 37.0)
        model = RatingModel()
        assert model.rate(hot, profile) < model.rate(cool, profile)

    def test_rating_stays_in_1_to_5(self):
        profile = ThermalComfortProfile("x", 37.0, 35.0, heat_sensitivity=10.0)
        scorched = make_outcome("baseline", [50.0] * 10, 37.0)
        assert RatingModel().rate(scorched, profile) == 1

    def test_slowdown_below_noticeability_is_free(self):
        profile = ThermalComfortProfile("x", 37.0, 35.0, performance_sensitivity=2.0)
        slight = make_outcome("usta", [30.0] * 10, 37.0, delivered=97.0, demanded=100.0)
        assert RatingModel().rate(slight, profile) == 5

    def test_large_slowdown_penalised_for_sensitive_user(self):
        sensitive = ThermalComfortProfile("x", 37.0, 35.0, performance_sensitivity=3.0)
        relaxed = ThermalComfortProfile("y", 37.0, 35.0, performance_sensitivity=0.2)
        slow = make_outcome("usta", [30.0] * 10, 37.0, delivered=50.0, demanded=100.0)
        model = RatingModel()
        assert model.score(slow, sensitive) < model.score(slow, relaxed)

    def test_slowdown_property(self):
        outcome = make_outcome("usta", [30.0], 37.0, delivered=80.0, demanded=100.0)
        assert outcome.slowdown == pytest.approx(0.2)
        free = make_outcome("usta", [30.0], 37.0, delivered=10.0, demanded=0.0)
        assert free.slowdown == 0.0

    def test_preference_prefers_cooler_scheme_for_heat_sensitive_user(self):
        profile = ThermalComfortProfile("x", 35.0, 33.0, heat_sensitivity=1.5)
        baseline = make_outcome("baseline", [40.0] * 20, 35.0)
        usta = make_outcome("usta", [35.5] * 20, 35.0, delivered=85.0)
        result = RatingModel().preference(baseline, usta, profile)
        assert result.preference == "usta"
        assert result.usta_rating >= result.baseline_rating

    def test_preference_no_difference_when_nothing_changes(self):
        profile = ThermalComfortProfile("x", 42.0, 40.0)
        same = make_outcome("baseline", [33.0] * 20, 42.0)
        result = RatingModel().preference(same, same, profile)
        assert result.preference == "no_difference"

    def test_preference_baseline_for_performance_sensitive_user(self):
        profile = ThermalComfortProfile("x", 36.0, 34.0, heat_sensitivity=0.3, performance_sensitivity=3.0)
        baseline = make_outcome("baseline", [37.0] * 20, 36.0)
        usta = make_outcome("usta", [36.2] * 20, 36.0, delivered=55.0)
        result = RatingModel().preference(baseline, usta, profile)
        assert result.preference == "baseline"

    def test_summarize_preferences(self):
        profile = ThermalComfortProfile("x", 35.0, 33.0, heat_sensitivity=1.5)
        baseline = make_outcome("baseline", [40.0] * 20, 35.0)
        usta = make_outcome("usta", [35.2] * 20, 35.0)
        results = [RatingModel().preference(baseline, usta, profile) for _ in range(3)]
        summary = summarize_preferences(results)
        assert summary["prefer_usta"] == 3.0
        assert summary["mean_usta_rating"] >= summary["mean_baseline_rating"]

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_preferences([])
