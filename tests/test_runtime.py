"""Tests for the batched experiment runtime and the prefactored thermal path.

The contract under test: every executor of the batched runtime (serial,
process pool, vectorized population) is a drop-in replacement for sequential
:meth:`Simulator.run` calls — bit-for-bit identical ``StepRecord`` streams —
and the prefactored implicit thermal stepping is numerically identical to the
seed's unfactored solve.
"""

import numpy as np
import pytest

from repro.device.platform import DevicePlatform
from repro.governors import ConservativeGovernor, OndemandGovernor, create_governor
from repro.runtime import (
    BatchRunner,
    ConstantManagerFactory,
    ExperimentCell,
    ExperimentPlan,
    PopulationMember,
    ProcessPoolCellExecutor,
    ResultStore,
    SerialExecutor,
    VectorizationError,
    VectorizedExecutor,
    run_cell,
    simulate_population,
)
from repro.sim.engine import ManagerDecision, SimulationKernel, Simulator
from repro.sim.results import SimulationResult, StepRecord
from repro.thermal import (
    Nexus4ThermalParameters,
    ThermalNetwork,
    ThermalSolver,
    build_nexus4_network,
)
from repro.workloads import WorkloadSample, WorkloadTrace
from repro.workloads.benchmarks import build_benchmark


class ThresholdManager:
    """Deterministic, picklable stand-in for USTA (no trained predictor needed)."""

    name = "thresh"

    def __init__(self, limit_c: float = 33.0):
        self.limit_c = limit_c
        self._cap = None

    def reset(self) -> None:
        self._cap = None

    def observe(self, time_s, sensor_readings, utilization, frequency_khz):
        skin = sensor_readings.get("skin", 0.0)
        if skin > self.limit_c:
            self._cap = 3
        elif skin < self.limit_c - 1.0:
            self._cap = None
        return ManagerDecision(level_cap=self._cap, predicted_skin_temp_c=skin)


def unfactored_implicit_step(network, dt_s, power_w):
    """The seed implementation of one backward-Euler step (reference)."""
    c = network.capacitances
    g = network.conductance_matrix
    t_old = network.temperatures_vector
    rhs_const = network.boundary_coupling @ network.boundary_temperatures_vector
    p = network.power_vector(power_w)
    a = np.diag(c / dt_s) + g
    b = (c / dt_s) * t_old + rhs_const + p
    return np.linalg.solve(a, b)


POWER = {"cpu": 2.5, "screen": 0.5, "board": 0.6, "battery": 0.2}


class TestPrefactoredSolver:
    def test_matches_unfactored_solve(self):
        reference = build_nexus4_network()
        network = build_nexus4_network()
        solver = ThermalSolver(network)
        for _ in range(200):
            expected = unfactored_implicit_step(reference, 1.0, POWER)
            reference.apply_temperature_vector(expected)
            solver.step(1.0, POWER)
            np.testing.assert_allclose(
                network.temperatures_vector, expected, rtol=0, atol=1e-10
            )

    def test_invalidated_by_conductance_change(self):
        reference = build_nexus4_network()
        network = build_nexus4_network()
        solver = ThermalSolver(network)
        solver.step(1.0, POWER)
        reference.apply_temperature_vector(unfactored_implicit_step(reference, 1.0, POWER))
        for net in (network, reference):
            net.set_conductance("back_cover", "hand", 0.05)
        solver.step(1.0, POWER)
        reference.apply_temperature_vector(unfactored_implicit_step(reference, 1.0, POWER))
        np.testing.assert_allclose(
            network.temperatures_vector, reference.temperatures_vector, rtol=0, atol=1e-10
        )

    def test_invalidated_by_boundary_temperature_change(self):
        reference = build_nexus4_network()
        network = build_nexus4_network()
        solver = ThermalSolver(network)
        solver.step(1.0, POWER)
        reference.apply_temperature_vector(unfactored_implicit_step(reference, 1.0, POWER))
        for net in (network, reference):
            net.set_boundary_temperature("ambient", 31.0)
        solver.step(1.0, POWER)
        reference.apply_temperature_vector(unfactored_implicit_step(reference, 1.0, POWER))
        np.testing.assert_allclose(
            network.temperatures_vector, reference.temperatures_vector, rtol=0, atol=1e-10
        )

    def test_invalidated_by_dt_change(self):
        reference = build_nexus4_network()
        network = build_nexus4_network()
        solver = ThermalSolver(network)
        for dt in (1.0, 1.0, 0.25, 2.0, 1.0):
            reference.apply_temperature_vector(unfactored_implicit_step(reference, dt, POWER))
            solver.step(dt, POWER)
            np.testing.assert_allclose(
                network.temperatures_vector,
                reference.temperatures_vector,
                rtol=0,
                atol=1e-10,
            )

    def test_network_version_counters(self):
        network = build_nexus4_network()
        matrix_version = network.matrix_version
        boundary_version = network.boundary_version
        network.set_conductance("back_cover", "hand", 0.05)
        assert network.matrix_version == matrix_version + 1
        network.set_boundary_temperature("ambient", 30.0)
        assert network.boundary_version == boundary_version + 1
        network.set_temperatures({"hand": 34.0})
        assert network.boundary_version == boundary_version + 2
        # Internal-only updates leave both counters alone.
        matrix_version = network.matrix_version
        boundary_version = network.boundary_version
        network.set_temperatures({"cpu": 50.0})
        assert network.matrix_version == matrix_version
        assert network.boundary_version == boundary_version

    def test_run_uses_exact_step_count(self):
        # 0.1 does not divide 360 exactly in binary; the elapsed-accumulator
        # of the seed implementation could drift over long horizons.
        network = build_nexus4_network()
        reference = build_nexus4_network()
        solver = ThermalSolver(network)
        ref_solver = ThermalSolver(reference)
        solver.run(360.0, 0.1, POWER)
        for _ in range(3600):
            ref_solver.step(0.1, POWER)
        assert np.array_equal(network.temperatures_vector, reference.temperatures_vector)

    def test_run_handles_partial_final_step(self):
        network = build_nexus4_network()
        reference = build_nexus4_network()
        ThermalSolver(network).run(2.5, 1.0, POWER)
        ref_solver = ThermalSolver(reference)
        ref_solver.step(1.0, POWER)
        ref_solver.step(1.0, POWER)
        ref_solver.step(0.5, POWER)
        assert np.array_equal(network.temperatures_vector, reference.temperatures_vector)


class TestStepMany:
    def _solvers(self, n):
        return [ThermalSolver(build_nexus4_network()) for _ in range(n)]

    def test_exact_matches_scalar_steps_bitwise(self):
        scalar = self._solvers(4)
        template = ThermalSolver(build_nexus4_network())
        temps = np.stack([s.network.temperatures_vector for s in scalar], axis=1)
        rng = np.random.default_rng(3)
        cpu_index = template.network.internal_names.index("cpu")
        for _ in range(50):
            powers = rng.uniform(0.0, 4.0, size=4)
            power_matrix = np.zeros_like(temps)
            power_matrix[cpu_index] = powers
            temps = template.step_many(1.0, power_matrix, temps)
            for j, s in enumerate(scalar):
                s.step(1.0, {"cpu": float(powers[j])})
                assert np.array_equal(temps[:, j], s.network.temperatures_vector)

    def test_blocked_mode_matches_to_1e10(self):
        scalar = self._solvers(3)
        template = ThermalSolver(build_nexus4_network())
        temps = np.stack([s.network.temperatures_vector for s in scalar], axis=1)
        for _ in range(50):
            power_matrix = np.zeros_like(temps)
            power_matrix[0] = (1.0, 2.0, 3.0)
            temps = template.step_many(1.0, power_matrix, temps, exact=False)
        for j, s in enumerate(scalar):
            for _ in range(50):
                s.step(1.0, {s.network.internal_names[0]: float(j + 1)})
            np.testing.assert_allclose(
                temps[:, j], s.network.temperatures_vector, rtol=0, atol=1e-10
            )

    def test_requires_implicit_method(self):
        solver = ThermalSolver(build_nexus4_network(), method="explicit")
        with pytest.raises(ValueError, match="implicit"):
            solver.step_many(1.0, np.zeros((6, 2)), np.zeros((6, 2)))

    def test_rejects_mismatched_shapes(self):
        solver = ThermalSolver(build_nexus4_network())
        with pytest.raises(ValueError, match="shape"):
            solver.step_many(1.0, np.zeros((6, 2)), np.zeros((6, 3)))


class TestSimulationKernel:
    def test_simulator_run_equals_manual_kernel_loop(self):
        trace = build_benchmark("youtube", seed=0, duration_s=90)
        p1 = DevicePlatform(seed=0)
        result = Simulator(platform=p1, governor=OndemandGovernor(table=p1.freq_table)).run(trace)

        p2 = DevicePlatform(seed=0)
        kernel = SimulationKernel(platform=p2, governor=OndemandGovernor(table=p2.freq_table))
        kernel.reset()
        manual = SimulationResult(
            workload_name=trace.name, governor_name=kernel.governor_label(), dt_s=trace.sample_period_s
        )
        for sample in trace:
            manual.append(kernel.step(sample, trace.sample_period_s, trace.name))
        assert result.records == manual.records
        assert result.governor_name == manual.governor_name

    def test_governor_label_includes_manager(self):
        platform = DevicePlatform(seed=0)
        kernel = SimulationKernel(
            platform=platform,
            governor=OndemandGovernor(table=platform.freq_table),
            thermal_manager=ThresholdManager(),
        )
        assert kernel.governor_label() == "thresh+ondemand"


class TestExperimentPlan:
    def test_from_product_grid(self):
        plan = ExperimentPlan.from_product(
            benchmarks=("skype", "youtube"),
            governors=("ondemand",),
            managers={"baseline": None, "thresh": ThresholdManager},
            seeds=(0, 1),
            duration_scale=0.1,
        )
        assert len(plan) == 2 * 1 * 2 * 2
        ids = [cell.cell_id for cell in plan]
        assert "skype/ondemand/baseline/seed0" in ids
        assert "youtube/ondemand/thresh/seed1" in ids
        cell = next(iter(plan))
        assert cell.metadata["benchmark"] == "skype"

    def test_duplicate_cell_ids_rejected(self):
        cell = ExperimentCell(cell_id="x", benchmark="skype")
        with pytest.raises(ValueError, match="duplicate"):
            ExperimentPlan([cell, cell])
        plan = ExperimentPlan([cell])
        with pytest.raises(ValueError, match="duplicate"):
            plan.add(ExperimentCell(cell_id="x", benchmark="youtube"))

    def test_cell_requires_workload(self):
        with pytest.raises(ValueError, match="benchmark name or an explicit trace"):
            ExperimentCell(cell_id="x")

    def test_population_plan_shares_trace(self):
        trace = build_benchmark("skype", seed=0, duration_s=30)
        plan = ExperimentPlan.population(
            trace, managers={"a": None, "b": None}, seeds=(0, 1)
        )
        assert len(plan) == 4
        assert all(cell.trace is trace for cell in plan)

    def test_with_metadata_merges(self):
        cell = ExperimentCell(cell_id="x", benchmark="skype", metadata={"a": 1})
        enriched = cell.with_metadata(b=2)
        assert enriched.metadata == {"a": 1, "b": 2}
        assert cell.metadata == {"a": 1}


class TestResultStore:
    def test_lookup_and_select(self):
        from repro.runtime.store import CellResult

        store = ResultStore()
        for name, scheme in (("a", "baseline"), ("b", "usta")):
            cell = ExperimentCell(cell_id=name, benchmark="skype", metadata={"scheme": scheme})
            result = SimulationResult(workload_name="skype", governor_name="x", dt_s=1.0)
            store.append(CellResult(cell=cell, result=result))
        assert store.get("a").cell.cell_id == "a"
        assert store.result_of("b").governor_name == "x"
        assert len(store.select(scheme="usta")) == 1
        assert store.one(scheme="baseline").cell.cell_id == "a"
        with pytest.raises(LookupError):
            store.one(scheme="missing")

    def test_duplicate_append_rejected(self):
        from repro.runtime.store import CellResult

        store = ResultStore()
        cell = ExperimentCell(cell_id="a", benchmark="skype")
        result = SimulationResult(workload_name="skype", governor_name="x", dt_s=1.0)
        store.append(CellResult(cell=cell, result=result))
        with pytest.raises(ValueError, match="duplicate"):
            store.append(CellResult(cell=cell, result=result))


def _reference_results(cells):
    """Sequential Simulator.run references for a list of cells."""
    references = []
    for cell in cells:
        trace = cell.build_trace()
        platform = DevicePlatform(seed=cell.seed)
        governor = (
            cell.governor
            if not isinstance(cell.governor, str)
            else create_governor(cell.governor, table=platform.freq_table)
        )
        simulator = Simulator(
            platform=platform,
            governor=governor,
            thermal_manager=cell.build_manager(),
        )
        references.append(simulator.run(trace))
    return references


def _parity_cells():
    trace = build_benchmark("skype", seed=0, duration_s=120)
    return [
        ExperimentCell(cell_id="baseline", trace=trace, governor="ondemand", seed=0),
        ExperimentCell(
            cell_id="managed",
            trace=trace,
            governor="ondemand",
            manager_factory=ThresholdManager,
            seed=0,
        ),
        ExperimentCell(cell_id="other-seed", trace=trace, governor="ondemand", seed=7),
        ExperimentCell(cell_id="bench", benchmark="youtube", duration_s=60, seed=1),
    ]


class TestExecutorParity:
    @pytest.mark.parametrize(
        "executor",
        [
            SerialExecutor(),
            ProcessPoolCellExecutor(max_workers=2),
            VectorizedExecutor(),
        ],
        ids=["serial", "process-pool", "vectorized"],
    )
    def test_bitwise_identical_to_sequential_simulator(self, executor):
        cells = _parity_cells()
        references = _reference_results(cells)
        store = BatchRunner(executor=executor).run(ExperimentPlan(cells))
        assert len(store) == len(cells)
        for cell, reference, entry in zip(cells, references, store):
            assert entry.cell.cell_id == cell.cell_id
            assert entry.result.governor_name == reference.governor_name
            assert entry.result.records == reference.records

    def test_vectorized_batches_whole_heterogeneous_plan(self):
        # Under the heterogeneous engine the whole plan — same-trace cells
        # *and* the different-benchmark cell — forms one SoA batch.
        cells = _parity_cells()
        plan = VectorizedExecutor().batch_plan(cells)
        assert plan.batches == [[0, 1, 2, 3]]
        assert plan.scalar == []

    def test_vectorized_falls_back_for_governor_instances(self):
        trace = build_benchmark("skype", seed=0, duration_s=60)
        platform = DevicePlatform(seed=0)
        cells = [
            ExperimentCell(
                cell_id="inst",
                trace=trace,
                governor=ConservativeGovernor(table=platform.freq_table),
                seed=0,
            )
        ]
        references = _reference_results(cells)
        store = BatchRunner(executor=VectorizedExecutor()).run(ExperimentPlan(cells))
        assert store.result_of("inst").records == references[0].records

    def test_for_jobs_selects_executor(self):
        assert isinstance(BatchRunner.for_jobs(None).executor, VectorizedExecutor)
        assert isinstance(BatchRunner.for_jobs(1).executor, VectorizedExecutor)
        pool_runner = BatchRunner.for_jobs(3)
        assert isinstance(pool_runner.executor, ProcessPoolCellExecutor)
        assert pool_runner.executor.max_workers == 3

    def test_logger_round_trip_through_executors(self):
        trace = build_benchmark("youtube", seed=0, duration_s=60)
        cells = [
            ExperimentCell(cell_id="logged", trace=trace, seed=0, log_period_s=3.0),
            ExperimentCell(cell_id="logged2", trace=trace, seed=1, log_period_s=3.0),
        ]
        serial = BatchRunner(executor=SerialExecutor()).run(ExperimentPlan(cells))
        vectorized = BatchRunner(executor=VectorizedExecutor()).run(ExperimentPlan(cells))
        pooled = BatchRunner(executor=ProcessPoolCellExecutor(max_workers=2)).run(
            ExperimentPlan(cells)
        )
        for store in (serial, vectorized, pooled):
            assert store.get("logged").logger is not None
            assert store.get("logged").logger.records == serial.get("logged").logger.records


class TestVectorizedPopulation:
    def _members(self, trace_unused, count=3, manager=False):
        members = []
        for seed in range(count):
            platform = DevicePlatform(seed=seed)
            members.append(
                PopulationMember(
                    platform=platform,
                    governor=OndemandGovernor(table=platform.freq_table),
                    thermal_manager=ThresholdManager(33.0 + seed) if manager else None,
                )
            )
        return members

    def test_bitwise_parity_with_sequential_runs(self):
        trace = build_benchmark("antutu_tester", seed=2, duration_s=150)
        members = self._members(trace, count=3, manager=True)
        results = simulate_population(trace, members)
        for seed, result in enumerate(results):
            platform = DevicePlatform(seed=seed)
            reference = Simulator(
                platform=platform,
                governor=OndemandGovernor(table=platform.freq_table),
                thermal_manager=ThresholdManager(33.0 + seed),
            ).run(trace)
            assert result.records == reference.records
            assert result.governor_name == reference.governor_name

    def test_state_write_back_allows_reuse(self):
        trace = build_benchmark("skype", seed=0, duration_s=60)
        members = self._members(trace, count=2)
        first = simulate_population(trace, members)
        second = simulate_population(trace, members)
        for a, b in zip(first, second):
            assert a.records == b.records

    def test_platform_state_is_warm_after_run(self):
        trace = build_benchmark("skype", seed=0, duration_s=60)
        members = self._members(trace, count=2)
        results = simulate_population(trace, members)
        for member, result in zip(members, results):
            last = result.records[-1]
            assert member.platform.temperatures()["back_cover"] == last.skin_temp_c
            assert member.platform.time_s == last.time_s

    def test_rejects_mismatched_hardware(self):
        trace = build_benchmark("skype", seed=0, duration_s=30)
        params = Nexus4ThermalParameters(cpu_capacitance=9.0)
        odd = DevicePlatform(seed=1, thermal_params=params)
        members = [
            PopulationMember(
                platform=DevicePlatform(seed=0),
                governor=OndemandGovernor(),
            ),
            PopulationMember(platform=odd, governor=OndemandGovernor()),
        ]
        with pytest.raises(VectorizationError, match="thermal networks"):
            simulate_population(trace, members)

    def test_rejects_mismatched_ambient(self):
        # Same matrices, different boundary temperatures: integrating against
        # the template's ambient would silently produce wrong physics.
        from repro.thermal import AmbientConditions

        trace = build_benchmark("skype", seed=0, duration_s=30)
        params = Nexus4ThermalParameters(ambient=AmbientConditions(air_temp_c=40.0))
        hot = DevicePlatform(seed=1, thermal_params=params)
        members = [
            PopulationMember(platform=DevicePlatform(seed=0), governor=OndemandGovernor()),
            PopulationMember(platform=hot, governor=OndemandGovernor()),
        ]
        with pytest.raises(VectorizationError, match="boundary temperatures"):
            simulate_population(trace, members)

    def test_rejects_shared_governor_instance(self):
        trace = build_benchmark("skype", seed=0, duration_s=30)
        governor = OndemandGovernor()
        members = [
            PopulationMember(platform=DevicePlatform(seed=0), governor=governor),
            PopulationMember(platform=DevicePlatform(seed=1), governor=governor),
        ]
        with pytest.raises(VectorizationError, match="governor instance"):
            simulate_population(trace, members)

    def test_rejects_boundary_initial_temps(self):
        trace = build_benchmark("skype", seed=0, duration_s=30)
        members = [
            PopulationMember(
                platform=DevicePlatform(seed=0),
                governor=OndemandGovernor(),
                initial_temps={"ambient": 30.0},
            ),
            PopulationMember(platform=DevicePlatform(seed=1), governor=OndemandGovernor()),
        ]
        with pytest.raises(VectorizationError, match="boundary"):
            simulate_population(trace, members)

    def test_mixed_governors_take_slow_path_and_match(self):
        trace = build_benchmark("skype", seed=0, duration_s=90)
        members = []
        for seed, cls in enumerate((OndemandGovernor, ConservativeGovernor)):
            platform = DevicePlatform(seed=seed)
            members.append(
                PopulationMember(platform=platform, governor=cls(table=platform.freq_table))
            )
        results = simulate_population(trace, members)
        for seed, (cls, result) in enumerate(zip((OndemandGovernor, ConservativeGovernor), results)):
            platform = DevicePlatform(seed=seed)
            reference = Simulator(
                platform=platform, governor=cls(table=platform.freq_table)
            ).run(trace)
            assert result.records == reference.records

    def test_touch_and_charge_toggles_match_sequential(self):
        # Hand contact changes the thermal matrices mid-run (factorization
        # invalidation) and charging flips the battery-heat branch.
        samples = []
        for i in range(90):
            samples.append(
                WorkloadSample(
                    cpu_demand=0.9 if i % 3 else 0.2,
                    touching=(i // 10) % 2 == 0,
                    charging=(i // 15) % 2 == 1,
                )
            )
        trace = WorkloadTrace.from_samples("toggles", samples)
        members = self._members(trace, count=3, manager=True)
        results = simulate_population(trace, members)
        for seed, result in enumerate(results):
            platform = DevicePlatform(seed=seed)
            reference = Simulator(
                platform=platform,
                governor=OndemandGovernor(table=platform.freq_table),
                thermal_manager=ThresholdManager(33.0 + seed),
            ).run(trace)
            assert result.records == reference.records

    def test_initial_temps_respected(self):
        trace = build_benchmark("skype", seed=0, duration_s=30)
        warm = {"cpu": 45.0, "back_cover": 34.0}
        members = [
            PopulationMember(
                platform=DevicePlatform(seed=0),
                governor=OndemandGovernor(),
                initial_temps=warm,
            )
        ]
        results = simulate_population(trace, members)
        platform = DevicePlatform(seed=0)
        reference = Simulator(platform=platform, governor=OndemandGovernor()).run(
            trace, initial_temps=warm
        )
        assert results[0].records == reference.records


class TestCompareRunsRewire:
    def test_compare_runs_matches_sequential(self):
        from repro.sim.experiments import compare_runs, run_workload

        trace = build_benchmark("skype", seed=0, duration_s=90)
        comparison = compare_runs(
            trace, treatment_manager=ThresholdManager(31.0), seed=3
        )
        baseline = run_workload(trace, governor="ondemand", seed=3)
        treatment = run_workload(
            trace, governor="ondemand", thermal_manager=ThresholdManager(31.0), seed=3
        )
        assert comparison.baseline.records == baseline.records
        assert comparison.treatment.records == treatment.records

    def test_constant_manager_factory_returns_instance(self):
        manager = ThresholdManager(30.0)
        factory = ConstantManagerFactory(manager)
        assert factory() is manager
