"""Property-based tests (hypothesis) for the comfort/adaptation/spec stack.

Three invariant families the issue's harness pins down for *arbitrary* valid
inputs, not just the paper's configurations:

* :func:`analyse_comfort` — time above the limit is monotone non-increasing
  in the limit, onset never exceeds the trace length, exceedances are sane;
* comfort adapters — the live limit never leaves its clamp bounds under any
  feedback sequence, and :class:`FixedLimit` is *exactly* a no-op on cap
  decisions (bit-identical to an unwrapped controller);
* declarative specs — ``AdapterSpec``/``PolicySpec`` survive dict and JSON
  round-trips unchanged for arbitrary valid specs.
"""

import pytest
from hypothesis import given, strategies as st

from repro.api.specs import AdapterSpec, GovernorSpec, ManagerSpec, PolicySpec
from repro.api.types import FeedbackEvent
from repro.core.usta import USTAController
from repro.users.adaptation import (
    AdaptiveComfortManager,
    FeedbackStep,
    FixedLimit,
    QuantileTracker,
    UserFeedbackModel,
)
from repro.users.comfort import analyse_comfort

# -- strategies ------------------------------------------------------------------

finite = dict(allow_nan=False, allow_infinity=False)

temps_traces = st.lists(st.floats(20.0, 60.0, **finite), min_size=1, max_size=200)

feedback_events = st.lists(
    st.builds(
        FeedbackEvent,
        time_s=st.floats(0.0, 1e5, **finite),
        kind=st.sampled_from([FeedbackEvent.DISCOMFORT, FeedbackEvent.COMFORT]),
        skin_temp_c=st.one_of(st.none(), st.floats(15.0, 70.0, **finite)),
    ),
    max_size=60,
)


@st.composite
def clamp_bounds(draw):
    """(min_limit, max_limit, initial) with initial inside the bounds."""
    low = draw(st.floats(26.0, 40.0, **finite))
    high = draw(st.floats(low + 0.5, 55.0, **finite))
    initial = draw(st.floats(low, high, **finite))
    return low, high, initial


@st.composite
def adapter_specs(draw):
    name = draw(st.sampled_from(["fixed", "feedback_step", "quantile_tracker"]))
    params = {}
    if name != "fixed" and draw(st.booleans()):
        low, high, initial = draw(clamp_bounds())
        params = {"min_limit_c": low, "max_limit_c": high, "initial_limit_c": initial}
    if name == "feedback_step" and draw(st.booleans()):
        params["step_down_c"] = draw(st.floats(0.05, 2.0, **finite))
        params["hold_off_s"] = draw(st.floats(0.0, 120.0, **finite))
    if name == "quantile_tracker" and draw(st.booleans()):
        params["quantile"] = draw(st.floats(0.05, 0.95, **finite))
        params["gain_c"] = draw(st.floats(0.05, 1.0, **finite))
    feedback = None
    if draw(st.booleans()):
        feedback = {"true_limit_c": draw(st.floats(30.0, 45.0, **finite))}
        if draw(st.booleans()):
            feedback["report_period_s"] = draw(st.floats(1.0, 120.0, **finite))
    return AdapterSpec(name=name, params=params, feedback=feedback)


@st.composite
def policy_specs(draw):
    governor = GovernorSpec(
        name=draw(st.sampled_from(["ondemand", "conservative", "performance"]))
    )
    manager = None
    adapter = None
    if draw(st.booleans()):
        manager = ManagerSpec(
            "usta",
            params={"skin_limit_c": draw(st.floats(30.0, 45.0, **finite))},
        )
        if draw(st.booleans()):
            adapter = draw(adapter_specs())
    label = draw(st.one_of(st.none(), st.text(min_size=1, max_size=12)))
    return PolicySpec(governor=governor, manager=manager, adapter=adapter, label=label)


# -- analyse_comfort invariants --------------------------------------------------


class TestComfortInvariants:
    @given(
        temps=temps_traces,
        limit_low=st.floats(25.0, 55.0, **finite),
        delta=st.floats(0.0, 20.0, **finite),
        dt=st.floats(0.1, 10.0, **finite),
    )
    def test_time_over_limit_is_monotone_in_limit(self, temps, limit_low, delta, dt):
        """Raising the limit can only shrink the time (and severity) above it."""
        tight = analyse_comfort(temps, limit_low, dt_s=dt)
        loose = analyse_comfort(temps, limit_low + delta, dt_s=dt)
        assert loose.time_over_limit_s <= tight.time_over_limit_s
        assert loose.peak_exceedance_c <= tight.peak_exceedance_c
        assert loose.mean_exceedance_c <= tight.mean_exceedance_c

    @given(temps=temps_traces, limit=st.floats(25.0, 55.0, **finite), dt=st.floats(0.1, 10.0, **finite))
    def test_onset_and_bounds(self, temps, limit, dt):
        analysis = analyse_comfort(temps, limit, dt_s=dt)
        assert analysis.duration_s == pytest.approx(len(temps) * dt)
        assert 0.0 <= analysis.time_over_limit_s <= analysis.duration_s
        assert 0.0 <= analysis.percent_time_over_limit <= 100.0
        # np.mean's pairwise summation can land one ulp above the max when
        # every sample is identical; allow that rounding headroom.
        tolerance = 1e-9 * max(1.0, abs(analysis.peak_exceedance_c))
        assert analysis.peak_exceedance_c >= analysis.mean_exceedance_c - tolerance
        assert analysis.mean_exceedance_c >= 0.0
        if analysis.onset_time_s is not None:
            # Onset is the start of the first over-limit sample, strictly
            # inside the trace.
            assert 0.0 <= analysis.onset_time_s < analysis.duration_s
            assert analysis.ever_uncomfortable
        else:
            assert not analysis.ever_uncomfortable


# -- adapter invariants ----------------------------------------------------------


class TestAdapterInvariants:
    @given(bounds=clamp_bounds(), events=feedback_events)
    def test_feedback_step_limit_stays_clamped(self, bounds, events):
        low, high, initial = bounds
        adapter = FeedbackStep(
            initial_limit_c=initial, min_limit_c=low, max_limit_c=high
        )
        for event in events:
            limit = adapter.observe(event)
            assert low <= limit <= high
            assert limit == adapter.current_limit_c

    @given(
        bounds=clamp_bounds(),
        events=feedback_events,
        quantile=st.floats(0.05, 0.95, **finite),
        gain=st.floats(0.05, 1.0, **finite),
    )
    def test_quantile_tracker_limit_stays_clamped(self, bounds, events, quantile, gain):
        low, high, initial = bounds
        adapter = QuantileTracker(
            initial_limit_c=initial,
            min_limit_c=low,
            max_limit_c=high,
            quantile=quantile,
            gain_c=gain,
        )
        for event in events:
            limit = adapter.observe(event)
            assert low <= limit <= high

    @given(events=feedback_events, initial=st.floats(26.0, 59.0, **finite))
    def test_fixed_limit_never_moves(self, events, initial):
        adapter = FixedLimit(initial_limit_c=initial)
        for event in events:
            assert adapter.observe(event) == initial
        adapter.reset()
        assert adapter.current_limit_c == initial

    @given(
        limit=st.floats(30.5, 45.0, **finite),
        true_limit=st.floats(30.5, 45.0, **finite),
        cpu_temps=st.lists(st.floats(25.0, 55.0, **finite), min_size=1, max_size=40),
    )
    def test_fixed_limit_is_a_decision_noop(self, limit, true_limit, cpu_temps, linear_predictor):
        """A FixedLimit wrapper must produce bit-identical cap decisions to the
        bare controller, even while the simulated user keeps reporting."""
        bare = USTAController(predictor=linear_predictor, skin_limit_c=limit)
        wrapped = AdaptiveComfortManager(
            inner=USTAController(predictor=linear_predictor, skin_limit_c=limit),
            adapter=FixedLimit(initial_limit_c=limit),
            feedback=UserFeedbackModel(true_limit_c=true_limit, report_period_s=2.0),
        )
        for step, cpu in enumerate(cpu_temps):
            readings = {"cpu": cpu, "battery": cpu - 2.0, "skin": cpu - 5.0}
            kwargs = dict(
                time_s=float(step + 1),
                sensor_readings=readings,
                utilization=0.6,
                frequency_khz=1_512_000.0,
            )
            assert wrapped.observe(**kwargs) == bare.observe(**kwargs)


# -- adversarial feedback stress ---------------------------------------------------
#
# The documented tolerance (see UserFeedbackModel / QuantileTracker): on the
# standard probe the quantile tracker converges within 0.5 °C of the user's
# true limit with an ideal or delayed (≤ 30 s) reporter, and stays within its
# trust window (3.0 °C) when up to 20 % of reports are contradictory.

from repro.analysis.adaptation import limit_probe_temperatures  # noqa: E402

_STRESS_PROBE = limit_probe_temperatures(dt_s=1.0)


def _track_through_probe(
    true_limit_c: float, comfort_band_c: float = 3.0, **feedback_kwargs
) -> float:
    """Final |error| of a default quantile tracker after the standard probe."""
    tracker = QuantileTracker(initial_limit_c=37.0)
    user = UserFeedbackModel(
        true_limit_c=true_limit_c,
        report_period_s=10.0,
        comfort_band_c=comfort_band_c,
        **feedback_kwargs,
    )
    for index, temp in enumerate(_STRESS_PROBE):
        event = user.observe(float(index + 1), float(temp))
        if event is not None:
            tracker.observe(event)
    return abs(tracker.current_limit_c - true_limit_c)


class TestAdversarialFeedbackStress:
    @given(
        true_limit=st.floats(34.0, 42.8, **finite),
        flip=st.floats(0.0, 0.2, **finite),
        seed=st.integers(0, 2**16),
    )
    def test_quantile_tracker_tolerates_contradictory_reports(self, true_limit, flip, seed):
        assert _track_through_probe(true_limit, flip_probability=flip, seed=seed) <= 3.0

    @given(
        true_limit=st.floats(34.0, 42.8, **finite),
        delay=st.floats(0.0, 30.0, **finite),
    )
    def test_quantile_tracker_tolerates_delayed_reports(self, true_limit, delay):
        assert _track_through_probe(true_limit, delay_s=delay) <= 0.5

    @given(true_limit=st.floats(40.5, 44.5, **finite))
    def test_trust_window_does_not_freeze_far_limits(self, true_limit):
        """A limit far outside the trust window still converges: persistent
        far reports escape the outlier filter (regression: the window used
        to reject them all, freezing the tracker at its initial estimate)."""
        assert _track_through_probe(true_limit) <= 0.5

    def test_trust_window_escape_with_narrow_comfort_band(self):
        # band 0.5 puts every informative report ≥3.5 °C from the initial
        # estimate — only the streak escape lets the tracker move at all.
        error = _track_through_probe(41.0, comfort_band_c=0.5)
        assert error <= 0.5

    @given(
        true_limit=st.floats(34.0, 42.8, **finite),
        flip=st.floats(0.0, 0.15, **finite),
        delay=st.floats(0.0, 20.0, **finite),
        seed=st.integers(0, 2**16),
    )
    def test_quantile_tracker_tolerates_combined_adversity(
        self, true_limit, flip, delay, seed
    ):
        error = _track_through_probe(
            true_limit, flip_probability=flip, delay_s=delay, seed=seed
        )
        assert error <= 3.0

    @given(
        true_limit=st.floats(34.0, 42.8, **finite),
        flip=st.floats(0.0, 1.0, **finite),
        delay=st.floats(0.0, 120.0, **finite),
        seed=st.integers(0, 2**16),
    )
    def test_tracker_limit_stays_plausible_under_any_adversity(
        self, true_limit, flip, delay, seed
    ):
        """Whatever the reporter does, the live limit never leaves its clamp."""
        tracker = QuantileTracker(initial_limit_c=37.0)
        user = UserFeedbackModel(
            true_limit_c=true_limit,
            report_period_s=10.0,
            flip_probability=flip,
            delay_s=delay,
            seed=seed,
        )
        for index, temp in enumerate(_STRESS_PROBE[:600]):
            event = user.observe(float(index + 1), float(temp))
            if event is not None:
                tracker.observe(event)
            assert tracker.min_limit_c <= tracker.current_limit_c <= tracker.max_limit_c


# -- spec round-trips ------------------------------------------------------------


class TestSpecRoundTrips:
    @given(spec=adapter_specs())
    def test_adapter_spec_dict_round_trip(self, spec):
        assert AdapterSpec.from_spec(spec.to_spec()) == spec

    @given(spec=policy_specs())
    def test_policy_spec_dict_round_trip(self, spec):
        assert PolicySpec.from_spec(spec.to_spec()) == spec

    @given(spec=policy_specs())
    def test_policy_spec_json_round_trip(self, spec):
        """JSON serialisation is exact: floats survive via repr."""
        assert PolicySpec.from_json(spec.to_json()) == spec
