"""Tests for workload traces, generators and the thirteen paper benchmarks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    BurstyLoad,
    ConstantLoad,
    PeriodicLoad,
    PhasedLoad,
    RampLoad,
    WorkloadSample,
    WorkloadTrace,
    build_all_benchmarks,
    build_benchmark,
)


class TestWorkloadSample:
    def test_defaults_are_valid(self):
        sample = WorkloadSample()
        assert sample.cpu_demand == 0.0
        assert sample.screen_on

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSample(cpu_demand=1.5)
        with pytest.raises(ValueError):
            WorkloadSample(gpu_activity=-0.1)
        with pytest.raises(ValueError):
            WorkloadSample(brightness=2.0)

    def test_to_activity_round_trip(self):
        sample = WorkloadSample(cpu_demand=0.4, gpu_activity=0.2, charging=True, touching=False)
        activity = sample.to_activity()
        assert activity.cpu_demand == 0.4
        assert activity.gpu_activity == 0.2
        assert activity.charging
        assert not activity.touching


class TestWorkloadTrace:
    def test_constant_constructor(self):
        trace = WorkloadTrace.constant("t", 10.0, WorkloadSample(cpu_demand=0.5))
        assert len(trace) == 10
        assert trace.duration_s == 10.0
        assert trace.mean_cpu_demand == pytest.approx(0.5)
        assert trace.peak_cpu_demand == pytest.approx(0.5)

    def test_sample_at_clamps(self):
        trace = WorkloadTrace.constant("t", 5.0, WorkloadSample(cpu_demand=0.3))
        assert trace.sample_at(-10.0).cpu_demand == 0.3
        assert trace.sample_at(100.0).cpu_demand == 0.3

    def test_sample_at_empty_trace_raises(self):
        with pytest.raises(ValueError):
            WorkloadTrace("empty").sample_at(0.0)

    def test_truncated(self):
        trace = WorkloadTrace.constant("t", 100.0, WorkloadSample())
        assert trace.truncated(30.0).duration_s == pytest.approx(30.0)

    def test_repeated_and_concatenated(self):
        a = WorkloadTrace.constant("a", 5.0, WorkloadSample(cpu_demand=0.1))
        b = WorkloadTrace.constant("b", 5.0, WorkloadSample(cpu_demand=0.9))
        assert a.repeated(3).duration_s == pytest.approx(15.0)
        joined = a.concatenated(b)
        assert len(joined) == 10
        assert joined.samples[0].cpu_demand == 0.1
        assert joined.samples[-1].cpu_demand == 0.9

    def test_concatenation_requires_matching_period(self):
        a = WorkloadTrace.constant("a", 5.0, WorkloadSample(), sample_period_s=1.0)
        b = WorkloadTrace.constant("b", 5.0, WorkloadSample(), sample_period_s=2.0)
        with pytest.raises(ValueError):
            a.concatenated(b)

    def test_scaled_demand_clips(self):
        trace = WorkloadTrace.constant("t", 5.0, WorkloadSample(cpu_demand=0.6))
        scaled = trace.scaled_demand(2.0)
        assert all(s.cpu_demand == 1.0 for s in scaled)
        with pytest.raises(ValueError):
            trace.scaled_demand(-1.0)

    def test_mapped_transform(self):
        trace = WorkloadTrace.constant("t", 3.0, WorkloadSample(cpu_demand=0.6))
        flipped = trace.mapped(lambda s: WorkloadSample(cpu_demand=1.0 - s.cpu_demand))
        assert flipped.samples[0].cpu_demand == pytest.approx(0.4)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            WorkloadTrace("t", sample_period_s=0.0)

    def test_repeated_rejects_non_positive(self):
        trace = WorkloadTrace.constant("t", 3.0, WorkloadSample())
        with pytest.raises(ValueError):
            trace.repeated(0)


class TestGenerators:
    def test_constant_load(self):
        trace = ConstantLoad(duration_s=60, demand=0.7, demand_jitter=0.0, seed=0).generate("c")
        assert len(trace) == 60
        assert all(s.cpu_demand == pytest.approx(0.7) for s in trace)

    def test_jitter_changes_samples_but_is_reproducible(self):
        gen_a = ConstantLoad(duration_s=60, demand=0.5, demand_jitter=0.1, seed=5)
        gen_b = ConstantLoad(duration_s=60, demand=0.5, demand_jitter=0.1, seed=5)
        trace_a, trace_b = gen_a.generate("a"), gen_b.generate("b")
        assert [s.cpu_demand for s in trace_a] == [s.cpu_demand for s in trace_b]
        assert len({s.cpu_demand for s in trace_a}) > 1

    def test_different_seeds_differ(self):
        a = ConstantLoad(duration_s=60, demand=0.5, demand_jitter=0.1, seed=1).generate("a")
        b = ConstantLoad(duration_s=60, demand=0.5, demand_jitter=0.1, seed=2).generate("b")
        assert [s.cpu_demand for s in a] != [s.cpu_demand for s in b]

    def test_bursty_load_has_two_levels(self):
        trace = BurstyLoad(
            duration_s=600, seed=0, demand_jitter=0.0, busy_demand=0.9, idle_demand=0.1
        ).generate("b")
        demands = {round(s.cpu_demand, 2) for s in trace}
        assert 0.9 in demands and 0.1 in demands

    def test_periodic_load_duty_cycle(self):
        trace = PeriodicLoad(
            duration_s=100, period_s=10, duty_cycle=0.5, high_demand=1.0, low_demand=0.0,
            demand_jitter=0.0, seed=0,
        ).generate("p")
        high = sum(1 for s in trace if s.cpu_demand > 0.5)
        assert high == pytest.approx(50, abs=5)

    def test_ramp_load_endpoints(self):
        trace = RampLoad(duration_s=100, start_demand=0.0, end_demand=1.0, demand_jitter=0.0).generate("r")
        assert trace.samples[0].cpu_demand == pytest.approx(0.0)
        assert trace.samples[-1].cpu_demand == pytest.approx(1.0)
        demands = [s.cpu_demand for s in trace]
        assert demands == sorted(demands)

    def test_phased_load_concatenates_phases(self):
        phased = PhasedLoad(
            seed=0,
            phases=[
                ("warm", ConstantLoad(duration_s=30, demand=0.2, demand_jitter=0.0)),
                ("hot", ConstantLoad(duration_s=30, demand=0.9, demand_jitter=0.0)),
            ],
        )
        trace = phased.generate("two_phase")
        assert len(trace) == 60
        assert trace.samples[0].cpu_demand == pytest.approx(0.2)
        assert trace.samples[-1].cpu_demand == pytest.approx(0.9)

    def test_phased_load_requires_phases(self):
        with pytest.raises(ValueError):
            PhasedLoad(phases=[])

    def test_invalid_generator_parameters(self):
        with pytest.raises(ValueError):
            ConstantLoad(duration_s=0)
        with pytest.raises(ValueError):
            BurstyLoad(busy_duration_s=0)
        with pytest.raises(ValueError):
            PeriodicLoad(duty_cycle=0.0)
        with pytest.raises(ValueError):
            ConstantLoad(demand_jitter=-0.1)

    @given(
        demand=st.floats(0.0, 1.0),
        jitter=st.floats(0.0, 0.3),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_generated_demand_always_in_unit_interval(self, demand, jitter, seed):
        trace = ConstantLoad(duration_s=30, demand=demand, demand_jitter=jitter, seed=seed).generate("x")
        assert all(0.0 <= s.cpu_demand <= 1.0 for s in trace)


class TestBenchmarks:
    def test_thirteen_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 13
        assert len(BENCHMARKS) == 13

    def test_build_all(self):
        traces = build_all_benchmarks(seed=0)
        assert len(traces) == 13
        assert {t.name for t in traces} == set(BENCHMARK_NAMES)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            build_benchmark("angry_birds")

    def test_durations_match_paper_statements(self):
        assert BENCHMARKS["skype"].duration_s == pytest.approx(30 * 60)
        assert BENCHMARKS["antutu_cpu_long"].duration_s == pytest.approx(90 * 60)

    def test_duration_override(self):
        trace = build_benchmark("skype", duration_s=120)
        assert trace.duration_s == pytest.approx(120)

    def test_benchmarks_are_reproducible_per_seed(self):
        a = build_benchmark("vellamo", seed=4)
        b = build_benchmark("vellamo", seed=4)
        assert [s.cpu_demand for s in a] == [s.cpu_demand for s in b]

    def test_charging_benchmark_profile(self):
        trace = build_benchmark("charging", duration_s=60)
        assert all(s.charging for s in trace)
        assert all(not s.screen_on for s in trace)
        assert all(not s.touching for s in trace)
        assert trace.mean_cpu_demand < 0.2

    def test_skype_is_sustained_and_radio_heavy(self):
        trace = build_benchmark("skype", duration_s=300)
        assert trace.mean_cpu_demand > 0.4
        assert all(s.radio_activity > 0.5 for s in trace)

    def test_gfxbench_is_gpu_bound(self):
        trace = build_benchmark("gfxbench", duration_s=300)
        mean_gpu = sum(s.gpu_activity for s in trace) / len(trace)
        assert mean_gpu > trace.mean_cpu_demand

    def test_antutu_tester_is_heavier_than_youtube(self):
        tester = build_benchmark("antutu_tester", duration_s=300)
        youtube = build_benchmark("youtube", duration_s=300)
        assert tester.mean_cpu_demand > youtube.mean_cpu_demand + 0.3

    def test_all_benchmark_samples_are_valid(self):
        for name in BENCHMARK_NAMES:
            trace = build_benchmark(name, duration_s=180)
            assert len(trace) == 180
            for sample in trace:
                assert 0.0 <= sample.cpu_demand <= 1.0
                assert 0.0 <= sample.gpu_activity <= 1.0
                assert 0.0 <= sample.radio_activity <= 1.0
