"""CLI tests and end-to-end integration tests."""

import pytest

from repro.cli import build_parser, main
from repro.core.pipeline import (
    build_usta_controller,
    collect_training_data,
    train_runtime_predictor,
)
from repro.sim.experiments import run_workload
from repro.workloads import build_benchmark


class TestCliParser:
    def test_parser_accepts_every_experiment(self):
        parser = build_parser()
        for name in ("table1", "fig1", "fig2", "fig3", "fig4", "fig5", "all"):
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.scale == pytest.approx(0.25)
        assert args.seed == 0
        assert args.model == "reptree"
        assert args.folds == 10

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_custom_options(self):
        args = build_parser().parse_args(["table1", "--scale", "0.5", "--seed", "3", "--model", "m5p"])
        assert args.scale == 0.5
        assert args.seed == 3
        assert args.model == "m5p"

    def test_serve_and_policy_options(self):
        args = build_parser().parse_args(
            ["serve", "--sessions", "500", "--policy", "examples/policy.json", "--smoke"]
        )
        assert args.experiment == "serve"
        assert args.sessions == 500
        assert args.policy == "examples/policy.json"
        assert args.smoke is True

    def test_sweep_approx_solve_flag(self):
        args = build_parser().parse_args(["sweep", "--approx-solve"])
        assert args.approx_solve is True
        assert build_parser().parse_args(["sweep"]).approx_solve is False

    def test_policy_rejected_for_experiments_that_ignore_it(self):
        with pytest.raises(SystemExit, match="--policy only applies"):
            main(["table1", "--policy", "examples/policy.json"])

    def test_streaming_flags(self):
        args = build_parser().parse_args(["sweep", "--stream-to", "out", "--resume"])
        assert args.stream_to == "out"
        assert args.resume is True
        assert build_parser().parse_args(["sweep"]).stream_to is None

    def test_stream_to_rejected_for_experiments_that_ignore_it(self):
        with pytest.raises(SystemExit, match="--stream-to only applies"):
            main(["fig1", "--stream-to", "out"])

    def test_resume_requires_stream_to(self):
        with pytest.raises(SystemExit, match="--resume needs --stream-to"):
            main(["sweep", "--resume"])


class TestCliExecution:
    def test_fig4_end_to_end(self, capsys):
        exit_code = main(["fig4", "--scale", "0.04", "--model", "linear_regression"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "peak skin reduction" in output

    def test_fig3_end_to_end(self, capsys):
        exit_code = main(["fig3", "--scale", "0.04", "--folds", "3", "--model", "linear_regression"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "reptree" in output  # all four learners are evaluated


class TestEndToEndPipeline:
    """The full paper pipeline on a reduced scale: collect → train → deploy → evaluate."""

    def test_offline_training_then_online_control(self):
        # 1. Collect logs on the instrumented device (baseline governor).
        data = collect_training_data(
            benchmarks=("skype", "antutu_tester"), seed=11, duration_scale=0.3
        )
        assert data.num_records > 100

        # 2. Train the deployed REPTree predictor.
        predictor = train_runtime_predictor(data, model_name="reptree", seed=11)

        # 3. Configure USTA just below the temperatures the training saw, so the
        #    shortened evaluation workload still triggers it.
        limit = float(data.skin_dataset().target.max()) - 0.5
        usta = build_usta_controller(predictor, skin_limit_c=max(limit, 30.1))

        # 4. Evaluate baseline vs USTA on the Skype workload.
        trace = build_benchmark("skype", seed=11, duration_s=600)
        baseline = run_workload(trace, governor="ondemand", seed=11)
        managed = run_workload(trace, governor="ondemand", thermal_manager=usta, seed=11)

        assert managed.max_skin_temp_c <= baseline.max_skin_temp_c + 0.1
        assert managed.average_frequency_ghz <= baseline.average_frequency_ghz + 1e-9
        # USTA engaged at least once and recorded its predictions.
        assert usta.prediction_count > 0

    def test_usta_keeps_default_user_cooler_on_full_skype_call(self, linear_predictor):
        trace = build_benchmark("skype", seed=0, duration_s=1500)
        baseline = run_workload(trace, governor="ondemand", seed=0)
        usta = build_usta_controller(linear_predictor, skin_limit_c=37.0)
        managed = run_workload(trace, governor="ondemand", thermal_manager=usta, seed=0)

        # The paper's headline claims, at reduced duration: the baseline
        # crosses the default 37 C limit, USTA cuts the peak and the average
        # frequency while the workload still makes progress.
        assert baseline.max_skin_temp_c > 37.0
        assert managed.max_skin_temp_c < baseline.max_skin_temp_c
        assert managed.average_frequency_ghz < baseline.average_frequency_ghz
        assert managed.throughput_ratio > 0.4
