"""Tests for the ML dataset container and the paper's metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.dataset import Dataset
from repro.ml.metrics import (
    error_rate,
    error_rate_with_deadband,
    mean_absolute_error,
    r2_score,
    regression_report,
    root_mean_squared_error,
)


def make_dataset(n=20, d=3, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = rng.normal(size=n)
    return Dataset(x, y, tuple(f"f{i}" for i in range(d)), "y")


class TestDataset:
    def test_basic_properties(self):
        data = make_dataset(10, 4)
        assert len(data) == 10
        assert data.num_features == 4
        assert not data.is_empty

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4), ("a", "b"), "y")
        with pytest.raises(ValueError):
            Dataset(np.zeros(3), np.zeros(3), ("a",), "y")
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(3), ("a",), "y")
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros((3, 1)), ("a", "b"), "y")

    def test_from_records(self):
        records = [
            {"cpu": 50.0, "util": 0.4, "skin": 35.0},
            {"cpu": 55.0, "util": 0.9, "skin": 38.0},
        ]
        data = Dataset.from_records(records, feature_names=("cpu", "util"), target_name="skin")
        assert len(data) == 2
        assert data.feature_column("cpu").tolist() == [50.0, 55.0]
        assert data.target.tolist() == [35.0, 38.0]

    def test_from_records_empty(self):
        data = Dataset.from_records([], feature_names=("a",), target_name="y")
        assert data.is_empty

    def test_subset(self):
        data = make_dataset(10)
        sub = data.subset([0, 2, 4])
        assert len(sub) == 3
        assert np.allclose(sub.features[1], data.features[2])

    def test_shuffled_is_permutation(self):
        data = make_dataset(50)
        shuffled = data.shuffled(seed=1)
        assert sorted(shuffled.target.tolist()) == sorted(data.target.tolist())
        assert shuffled.target.tolist() != data.target.tolist()

    def test_split_fractions(self):
        data = make_dataset(100)
        train, test = data.split(0.8, seed=0)
        assert len(train) == 80
        assert len(test) == 20
        with pytest.raises(ValueError):
            data.split(0.0)
        with pytest.raises(ValueError):
            data.split(1.0)

    def test_split_without_seed_preserves_order(self):
        data = make_dataset(10)
        train, test = data.split(0.5)
        assert np.allclose(train.features, data.features[:5])
        assert np.allclose(test.features, data.features[5:])

    def test_with_target(self):
        data = make_dataset(10)
        other = data.with_target(np.zeros(10), "zeros")
        assert other.target_name == "zeros"
        assert np.allclose(other.features, data.features)

    def test_feature_column_unknown(self):
        with pytest.raises(KeyError):
            make_dataset().feature_column("missing")

    def test_describe_contains_all_columns(self):
        data = make_dataset(20, 2)
        summary = data.describe()
        assert set(summary) == {"f0", "f1", "y"}
        assert summary["f0"]["min"] <= summary["f0"]["max"]


class TestErrorRate:
    def test_perfect_prediction_is_zero(self):
        expected = np.array([30.0, 40.0, 50.0])
        assert error_rate(expected, expected) == 0.0

    def test_matches_hand_calculation(self):
        expected = np.array([40.0, 50.0])
        predicted = np.array([38.0, 51.0])
        # (2/40 + 1/50) / 2 * 100 = (5% + 2%) / 2 = 3.5%
        assert error_rate(expected, predicted) == pytest.approx(3.5)

    def test_zero_expected_values_are_skipped(self):
        expected = np.array([0.0, 50.0])
        predicted = np.array([1.0, 45.0])
        assert error_rate(expected, predicted) == pytest.approx(10.0)

    def test_all_zero_expected_raises(self):
        with pytest.raises(ValueError):
            error_rate(np.zeros(3), np.ones(3))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            error_rate(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            error_rate(np.array([]), np.array([]))

    def test_deadband_ignores_small_errors(self):
        expected = np.array([40.0, 40.0])
        predicted = np.array([40.5, 42.0])
        assert error_rate_with_deadband(expected, predicted, deadband_c=1.0) == pytest.approx(
            (0.0 + 2.0 / 40.0 * 100.0) / 2
        )

    def test_deadband_zero_equals_plain_error_rate(self):
        rng = np.random.default_rng(0)
        expected = rng.uniform(30, 45, 50)
        predicted = expected + rng.normal(0, 0.5, 50)
        assert error_rate_with_deadband(expected, predicted, 0.0) == pytest.approx(
            error_rate(expected, predicted)
        )

    def test_negative_deadband_rejected(self):
        with pytest.raises(ValueError):
            error_rate_with_deadband(np.ones(2), np.ones(2), -1.0)

    @given(
        expected=arrays(np.float64, 10, elements=st.floats(25.0, 50.0)),
        noise=arrays(np.float64, 10, elements=st.floats(-3.0, 3.0)),
    )
    def test_deadband_never_exceeds_plain_error(self, expected, noise):
        predicted = expected + noise
        assert error_rate_with_deadband(expected, predicted) <= error_rate(expected, predicted) + 1e-9


class TestStandardMetrics:
    def test_mae_and_rmse(self):
        expected = np.array([1.0, 2.0, 3.0])
        predicted = np.array([1.0, 3.0, 5.0])
        assert mean_absolute_error(expected, predicted) == pytest.approx(1.0)
        assert root_mean_squared_error(expected, predicted) == pytest.approx(np.sqrt(5 / 3))

    def test_r2_perfect_and_mean(self):
        expected = np.array([1.0, 2.0, 3.0])
        assert r2_score(expected, expected) == pytest.approx(1.0)
        assert r2_score(expected, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        expected = np.full(4, 5.0)
        assert r2_score(expected, expected) == 1.0
        assert r2_score(expected, expected + 1.0) == 0.0

    def test_report_has_all_keys(self):
        expected = np.array([30.0, 40.0])
        predicted = np.array([31.0, 39.0])
        report = regression_report(expected, predicted)
        assert set(report) == {"error_rate_pct", "error_rate_deadband_pct", "mae", "rmse", "r2"}

    @given(
        expected=arrays(np.float64, 8, elements=st.floats(1.0, 100.0)),
        predicted=arrays(np.float64, 8, elements=st.floats(1.0, 100.0)),
    )
    def test_rmse_at_least_mae(self, expected, predicted):
        assert root_mean_squared_error(expected, predicted) >= mean_absolute_error(expected, predicted) - 1e-9
