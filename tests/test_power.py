"""Tests for the platform power models."""

import pytest
from hypothesis import given, strategies as st

from repro.device.freq_table import nexus4_frequency_table
from repro.device.power import (
    ChargerPowerModel,
    CpuPowerModel,
    DisplayPowerModel,
    GpuPowerModel,
    PlatformPowerModel,
    RadioPowerModel,
)

TABLE = nexus4_frequency_table()


class TestCpuPowerModel:
    def test_dynamic_power_scales_with_utilization(self):
        model = CpuPowerModel()
        opp = TABLE[TABLE.max_level]
        assert model.dynamic_power(opp, 1.0) > model.dynamic_power(opp, 0.5) > 0
        assert model.dynamic_power(opp, 0.0) == 0.0

    def test_dynamic_power_scales_with_frequency(self):
        model = CpuPowerModel()
        low = model.dynamic_power(TABLE[0], 1.0)
        high = model.dynamic_power(TABLE[TABLE.max_level], 1.0)
        assert high > low
        # V^2 * f scaling: top OPP is ~4x the bottom OPP in dynamic power.
        assert high / low > 3.0

    def test_dynamic_power_clamps_utilization(self):
        model = CpuPowerModel()
        opp = TABLE[5]
        assert model.dynamic_power(opp, 2.0) == model.dynamic_power(opp, 1.0)
        assert model.dynamic_power(opp, -1.0) == 0.0

    def test_leakage_grows_with_temperature(self):
        model = CpuPowerModel()
        opp = TABLE[5]
        assert model.leakage_power(opp, 80.0) > model.leakage_power(opp, 40.0)

    def test_leakage_at_reference_point(self):
        model = CpuPowerModel()
        opp_at_ref_voltage = next(p for p in TABLE if abs(p.voltage_v - model.reference_voltage_v) < 1e-9)
        assert model.leakage_power(opp_at_ref_voltage, model.reference_temp_c) == pytest.approx(
            model.leakage_at_ref_w
        )

    def test_total_power_includes_idle_floor(self):
        model = CpuPowerModel()
        opp = TABLE[0]
        assert model.power(opp, 0.0, 25.0) > model.idle_power_w

    def test_full_load_power_is_realistic(self):
        # A fully loaded Krait cluster at the top frequency burns a few Watts.
        model = CpuPowerModel()
        power = model.power(TABLE[TABLE.max_level], 1.0, 60.0)
        assert 2.0 < power < 5.0


class TestGpuDisplayRadio:
    def test_gpu_power_bounds(self):
        gpu = GpuPowerModel()
        assert gpu.power(0.0) == pytest.approx(gpu.idle_power_w)
        assert gpu.power(1.0) == pytest.approx(gpu.max_power_w)
        assert gpu.idle_power_w < gpu.power(0.5) < gpu.max_power_w

    def test_gpu_activity_clamped(self):
        gpu = GpuPowerModel()
        assert gpu.power(5.0) == gpu.power(1.0)
        assert gpu.power(-5.0) == gpu.power(0.0)

    def test_display_off_draws_nothing(self):
        display = DisplayPowerModel()
        assert display.power(False, 1.0) == 0.0

    def test_display_power_grows_with_brightness(self):
        display = DisplayPowerModel()
        assert display.power(True, 1.0) > display.power(True, 0.2) > 0

    def test_radio_power_bounds(self):
        radio = RadioPowerModel()
        assert radio.power(0.0) == pytest.approx(radio.idle_power_w)
        assert radio.power(1.0) == pytest.approx(radio.max_power_w)


class TestCharger:
    def test_charging_heat_is_constant_fraction(self):
        charger = ChargerPowerModel()
        assert charger.heat(True, 0.0) == pytest.approx(
            charger.charge_power_w * charger.charge_loss_fraction
        )

    def test_discharge_heat_scales_with_draw(self):
        charger = ChargerPowerModel()
        assert charger.heat(False, 4.0) == pytest.approx(4.0 * charger.discharge_loss_fraction)
        assert charger.heat(False, 0.0) == 0.0

    def test_negative_draw_is_ignored(self):
        charger = ChargerPowerModel()
        assert charger.heat(False, -3.0) == 0.0


class TestPlatformPowerModel:
    def test_breakdown_totals(self):
        model = PlatformPowerModel()
        breakdown = model.evaluate(
            opp=TABLE[6],
            cpu_utilization=0.5,
            die_temp_c=45.0,
            gpu_activity=0.3,
            screen_on=True,
            brightness=0.7,
            radio_activity=0.4,
            charging=False,
        )
        assert breakdown.total_w == pytest.approx(
            breakdown.cpu_w
            + breakdown.gpu_w
            + breakdown.display_w
            + breakdown.radio_w
            + breakdown.battery_w
        )
        assert breakdown.soc_w == pytest.approx(breakdown.cpu_w + breakdown.gpu_w)

    def test_idle_platform_power_is_small(self):
        model = PlatformPowerModel()
        breakdown = model.evaluate(
            opp=TABLE[0],
            cpu_utilization=0.0,
            die_temp_c=25.0,
            screen_on=False,
            brightness=0.0,
        )
        assert breakdown.total_w < 1.0

    def test_heavy_platform_power_is_several_watts(self):
        model = PlatformPowerModel()
        breakdown = model.evaluate(
            opp=TABLE[TABLE.max_level],
            cpu_utilization=1.0,
            die_temp_c=60.0,
            gpu_activity=0.5,
            screen_on=True,
            brightness=0.9,
            radio_activity=0.9,
        )
        assert 3.0 < breakdown.total_w < 7.0

    def test_max_cpu_power_helper(self):
        model = PlatformPowerModel()
        assert model.max_cpu_power() > 2.0

    @given(
        util=st.floats(0.0, 1.0),
        gpu=st.floats(0.0, 1.0),
        radio=st.floats(0.0, 1.0),
        brightness=st.floats(0.0, 1.0),
        level=st.integers(0, 11),
        temp=st.floats(20.0, 90.0),
        charging=st.booleans(),
    )
    def test_power_is_always_positive_and_bounded(self, util, gpu, radio, brightness, level, temp, charging):
        model = PlatformPowerModel()
        breakdown = model.evaluate(
            opp=TABLE[level],
            cpu_utilization=util,
            die_temp_c=temp,
            gpu_activity=gpu,
            screen_on=True,
            brightness=brightness,
            radio_activity=radio,
            charging=charging,
        )
        assert 0.0 < breakdown.total_w < 12.0

    @given(level_low=st.integers(0, 11), level_high=st.integers(0, 11))
    def test_cpu_power_monotonic_in_level_at_full_load(self, level_low, level_high):
        if level_low > level_high:
            level_low, level_high = level_high, level_low
        model = CpuPowerModel()
        low = model.power(TABLE[level_low], 1.0, 50.0)
        high = model.power(TABLE[level_high], 1.0, 50.0)
        assert high >= low - 1e-12
