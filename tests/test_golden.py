"""Golden regression suite: committed bit-exact record expectations.

``tests/golden/*.jsonl`` pins the full ``StepRecord`` streams (every float
bit) of two canonical scenarios — a table1-shaped grid and a three-user
adaptive sweep — for this toolchain.  Each scenario is re-executed under all
three executors and compared line-by-line against the committed file, so the
suite catches both executor divergence *and* whole-stack numeric drift (a
reordered float expression, a changed default) that executor-parity tests
cannot see.

After an *intended* numeric change, regenerate with
``python -m repro golden --update`` and commit the diff.
"""

import json
from pathlib import Path

import pytest

from repro.runtime.executors import (
    ProcessPoolCellExecutor,
    SerialExecutor,
    VectorizedExecutor,
)
from repro.runtime.golden import (
    GOLDEN_SCENARIOS,
    golden_lines,
    golden_plan,
    run_golden,
    verify_golden,
    write_golden,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

EXECUTORS = {
    "serial": SerialExecutor,
    "vectorized": VectorizedExecutor,
    "process-pool": lambda: ProcessPoolCellExecutor(max_workers=2),
}


def committed_lines(scenario: str):
    path = GOLDEN_DIR / f"{scenario}.jsonl"
    assert path.exists(), f"missing {path}; run `python -m repro golden --update`"
    return path.read_text(encoding="utf-8").splitlines()


@pytest.mark.parametrize("scenario", GOLDEN_SCENARIOS)
@pytest.mark.parametrize("executor_name", sorted(EXECUTORS))
def test_scenario_matches_committed_records(scenario, executor_name):
    """Every executor reproduces the committed JSONL byte-for-byte."""
    expected = committed_lines(scenario)
    actual = golden_lines(run_golden(scenario, executor=EXECUTORS[executor_name]()))
    assert len(actual) == len(expected), "cell count drifted"
    for index, (want, got) in enumerate(zip(expected, actual)):
        assert got == want, (
            f"{scenario} cell #{index} drifted under the {executor_name} executor; "
            "if the numeric change is intended, run `python -m repro golden --update`"
        )


def test_sweep_golden_exercises_the_feedback_loop():
    """The committed sweep scenario must actually adapt (guards against a
    future edit quietly turning it into a static sweep)."""
    lines = committed_lines("sweep")
    moved = set()
    for line in lines:
        data = json.loads(line)
        limits = {record["comfort_limit_c"] for record in data["result"]["records"]}
        assert None not in limits, "sweep cells must run a managed policy"
        if len(limits) > 1:
            moved.add(data["cell"]["cell_id"])
    assert moved, "no sweep cell's comfort limit ever moved — the adapter is inert"


def test_golden_cells_are_self_contained():
    """Committed cells re-execute from their declarative description alone
    (benchmark by name, policy spec with a predictor recipe)."""
    for scenario in GOLDEN_SCENARIOS:
        for cell in golden_plan(scenario):
            assert cell.benchmark is not None and cell.trace is None
            assert cell.policy is not None and cell.predictor is None
            if cell.policy.manager is not None:
                assert cell.policy.manager.predictor is not None


def test_update_then_verify_roundtrip(tmp_path):
    """`golden --update` output verifies clean (the CLI's two code paths agree)."""
    write_golden(tmp_path)
    assert verify_golden(tmp_path) == {}


def test_verify_reports_drift(tmp_path):
    write_golden(tmp_path)
    target = tmp_path / "sweep.jsonl"
    lines = target.read_text(encoding="utf-8").splitlines()
    data = json.loads(lines[0])
    data["result"]["records"][0]["skin_temp_c"] += 1e-12  # one-ulp-scale nudge
    lines[0] = json.dumps(data, sort_keys=True, separators=(",", ":"))
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    problems = verify_golden(tmp_path)
    assert set(problems) == {"sweep"}
    assert "cell #0" in problems["sweep"]
