"""Scalar-vs-plane parity tests for the resident session plane.

The plane's contract (:mod:`repro.api.plane`) is *bit-identical* decisions:
a pool with the resident plane enabled must emit exactly the decisions a
plane-disabled pool (and therefore the scalar ``PolicySession.feed`` path)
emits, tick for tick, through every interleaving serving produces — due and
held predictions, simulated and external feedback, single feeds bracketed
between batches, swap-removing closes, and warm restores from persisted
state.  Every assertion here compares full ``CapDecision`` dataclasses, so
floats must match exactly, not approximately.
"""

import pytest

from repro.api.plane import session_plane_ineligibility
from repro.api.session import SessionPool, open_session
from repro.api.specs import AdapterSpec, GovernorSpec, ManagerSpec, PolicySpec
from repro.api.types import FeedbackEvent, TelemetrySample
from repro.fleet import restore_session_state, snapshot_session_state

REPORT_PERIOD_S = 3.0
TRUE_LIMIT_C = 34.3


def _spec(with_feedback: bool = True, adapter: str = "feedback_step") -> PolicySpec:
    feedback = (
        {"true_limit_c": TRUE_LIMIT_C, "report_period_s": REPORT_PERIOD_S}
        if with_feedback
        else None
    )
    return PolicySpec(
        manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}),
        adapter=AdapterSpec(
            adapter,
            params={"step_down_c": 0.5, "hold_off_s": 15.0}
            if adapter == "feedback_step"
            else {},
            feedback=feedback,
        ),
    )


def _sample(time_s: float, i: int, skin: bool = True) -> TelemetrySample:
    """Per-session telemetry that sweeps through the comfort band."""
    readings = {"cpu": 36.0 + (i % 9) * 0.7, "battery": 33.0 + (i % 4) * 0.4}
    if skin:
        readings["skin"] = 31.0 + (i % 13) * 0.35
    return TelemetrySample(
        time_s=time_s,
        utilization=0.4 + (i % 6) * 0.1,
        frequency_khz=1_200_000.0 + (i % 3) * 156_000.0,
        sensor_readings=readings,
    )


def _twin_pools(spec, count: int, predictor, ids=None):
    """The same sessions opened on a plane pool and a plane-disabled pool."""
    plane_pool = SessionPool(use_plane=True)
    scalar_pool = SessionPool(use_plane=False)
    ids = ids if ids is not None else [f"s-{i}" for i in range(count)]
    for sid in ids:
        plane_pool.open(sid, spec, predictor=predictor)
        scalar_pool.open(sid, spec, predictor=predictor)
    return plane_pool, scalar_pool, ids


def _assert_pools_agree(plane_pool, scalar_pool, ids):
    for sid in ids:
        a, b = plane_pool.get(sid), scalar_pool.get(sid)
        assert a.last_decision == b.last_decision, sid
        assert a.current_limit_c == b.current_limit_c, sid
        assert a.feed_count == b.feed_count, sid
        assert a.cap_count == b.cap_count, sid


class TestPlaneParity:
    def test_feed_many_bit_identical_over_mixed_ticks(self, linear_predictor):
        """Due ticks, held ticks and simulated-user feedback all agree."""
        plane_pool, scalar_pool, ids = _twin_pools(_spec(), 12, linear_predictor)
        assert plane_pool.plane_resident_count == 12
        for t in range(25):
            samples = {sid: _sample(float(t + 1), i + t) for i, sid in enumerate(ids)}
            got = plane_pool.feed_many(samples)
            want = scalar_pool.feed_many(samples)
            assert got == want  # full CapDecision equality, all sessions
        _assert_pools_agree(plane_pool, scalar_pool, ids)
        assert plane_pool.plane_tick_count == 25
        # The simulated users actually fired (limits moved off the default).
        assert any(plane_pool.get(sid).current_limit_c != 37.0 for sid in ids)
        # Same predictions happened, just batched on the plane.
        assert plane_pool.prediction_count == scalar_pool.prediction_count

    def test_external_feedback_on_due_and_held_ticks(self, linear_predictor):
        """External reports drop those sessions to scalar feeds — and the
        next vectorized tick picks their refreshed state back up."""
        plane_pool, scalar_pool, ids = _twin_pools(
            _spec(with_feedback=False, adapter="quantile_tracker"),
            6,
            linear_predictor,
        )
        for t in range(20):
            samples = {
                sid: _sample(float(t + 1), i, skin=False) for i, sid in enumerate(ids)
            }
            feedback = {}
            if t % 4 == 0:  # a due tick (period 3 s, 1 s spacing)
                feedback[ids[0]] = [
                    FeedbackEvent(float(t + 1), "discomfort", 34.0 + 0.05 * t)
                ]
            if t % 4 == 2:  # a held tick
                feedback[ids[1]] = [FeedbackEvent(float(t + 1), "comfort", 33.0)]
            got = plane_pool.feed_many(samples, feedback=feedback or None)
            want = scalar_pool.feed_many(samples, feedback=feedback or None)
            assert got == want
        _assert_pools_agree(plane_pool, scalar_pool, ids)
        assert plane_pool.get(ids[0]).current_limit_c != 37.0

    def test_feed_feedback_brackets_resident_state(self, linear_predictor):
        """feed_feedback between batch ticks syncs and refreshes the row."""
        plane_pool, scalar_pool, ids = _twin_pools(
            _spec(with_feedback=False), 4, linear_predictor
        )
        event = FeedbackEvent(1.5, "discomfort", 34.5)
        samples = {sid: _sample(1.0, i) for i, sid in enumerate(ids)}
        assert plane_pool.feed_many(samples) == scalar_pool.feed_many(samples)
        assert plane_pool.feed_feedback(ids[2], event) == scalar_pool.feed_feedback(
            ids[2], event
        )
        for t in range(2, 8):
            samples = {sid: _sample(float(t), i) for i, sid in enumerate(ids)}
            assert plane_pool.feed_many(samples) == scalar_pool.feed_many(samples)
        _assert_pools_agree(plane_pool, scalar_pool, ids)

    def test_single_feed_interleaved_with_batches(self, linear_predictor):
        """A direct session.feed between feed_many calls stays coherent."""
        plane_pool, scalar_pool, ids = _twin_pools(_spec(), 5, linear_predictor)
        for t in range(12):
            samples = {sid: _sample(float(t + 1), i) for i, sid in enumerate(ids)}
            assert plane_pool.feed_many(samples) == scalar_pool.feed_many(samples)
            if t % 3 == 1:
                lone = _sample(t + 1.5, 7 + t)
                assert plane_pool.get(ids[3]).feed(lone) == scalar_pool.get(
                    ids[3]
                ).feed(lone)
        _assert_pools_agree(plane_pool, scalar_pool, ids)

    def test_mixed_pool_keeps_fallback_sessions_scalar(self, linear_predictor):
        """Bare-governor sessions stay off the plane but keep deciding."""
        plane_pool = SessionPool(use_plane=True)
        scalar_pool = SessionPool(use_plane=False)
        bare = PolicySpec(governor=GovernorSpec("ondemand"))
        ids = []
        for i in range(6):
            sid = f"m-{i}"
            spec = bare if i % 3 == 0 else _spec()
            plane_pool.open(sid, spec, predictor=linear_predictor)
            scalar_pool.open(sid, spec, predictor=linear_predictor)
            ids.append(sid)
        report = plane_pool.describe_plane()
        assert report["plane_enabled"] is True
        assert report["resident_count"] == 4
        assert report["fallback_count"] == 2
        reasons = {
            e["session_id"]: e["fallback_reason"]
            for e in report["sessions"]
            if not e["resident"]
        }
        assert set(reasons) == {"m-0", "m-3"}
        assert "bare-governor" in reasons["m-0"]
        for t in range(10):
            samples = {sid: _sample(float(t + 1), i) for i, sid in enumerate(ids)}
            assert plane_pool.feed_many(samples) == scalar_pool.feed_many(samples)
        _assert_pools_agree(plane_pool, scalar_pool, ids)

    def test_close_swap_removes_row_and_keeps_parity(self, linear_predictor):
        """Closing a middle session swap-removes its plane row; the moved
        session's decisions must not change."""
        plane_pool, scalar_pool, ids = _twin_pools(_spec(), 7, linear_predictor)
        for t in range(6):
            samples = {sid: _sample(float(t + 1), i) for i, sid in enumerate(ids)}
            assert plane_pool.feed_many(samples) == scalar_pool.feed_many(samples)
        plane_pool.close(ids[2])
        scalar_pool.close(ids[2])
        remaining = [sid for sid in ids if sid != ids[2]]
        assert plane_pool.plane_resident_count == 6
        for t in range(6, 15):
            samples = {
                sid: _sample(float(t + 1), ids.index(sid)) for sid in remaining
            }
            assert plane_pool.feed_many(samples) == scalar_pool.feed_many(samples)
        _assert_pools_agree(plane_pool, scalar_pool, remaining)

    def test_feed_all_fast_path_matches_feed_many(self, linear_predictor):
        """The shared-sample fast path returns exactly the dict path's
        decisions (a twin pool fed the equivalent N-entry dict)."""
        fast_pool, dict_pool, ids = _twin_pools(_spec(), 8, linear_predictor)
        dict_pool2 = SessionPool(use_plane=True)
        for sid in ids:
            dict_pool2.open(sid, _spec(), predictor=linear_predictor)
        for t in range(15):
            sample = _sample(float(t + 1), t)
            fast = fast_pool.feed_all(sample)
            via_dict = dict_pool2.feed_many({sid: sample for sid in ids})
            scalar = dict_pool.feed_all(sample)
            assert fast == via_dict == scalar
        _assert_pools_agree(fast_pool, dict_pool, ids)
        assert fast_pool.plane_tick_count == 15

    def test_warm_restore_onto_plane_resumes_identically(self, linear_predictor):
        """Persisted state restored into a plane pool continues bit-identical
        to the same restore into a scalar pool."""
        donor = open_session(_spec(), predictor=linear_predictor)
        for t in range(30):
            donor.feed(_sample(float(t + 1), t))
        snapshot = snapshot_session_state(donor)
        assert snapshot is not None and snapshot["limit_c"] != 37.0

        plane_pool, scalar_pool, ids = _twin_pools(_spec(), 3, linear_predictor)
        assert restore_session_state(plane_pool.get(ids[1]), snapshot)
        assert restore_session_state(scalar_pool.get(ids[1]), snapshot)
        assert plane_pool.get(ids[1]).current_limit_c == snapshot["limit_c"]
        for t in range(12):
            samples = {sid: _sample(float(t + 1), i) for i, sid in enumerate(ids)}
            assert plane_pool.feed_many(samples) == scalar_pool.feed_many(samples)
        _assert_pools_agree(plane_pool, scalar_pool, ids)

    def test_disabled_plane_is_reported(self, linear_predictor):
        pool = SessionPool(use_plane=False)
        pool.open("s-0", _spec(), predictor=linear_predictor)
        report = pool.describe_plane()
        assert report["plane_enabled"] is False
        assert report["resident_count"] == 0
        assert (
            report["sessions"][0]["fallback_reason"]
            == "session plane disabled for this pool"
        )
        assert pool.plane_resident_count == 0
        assert pool.plane_tick_count == 0

    def test_ineligibility_names_the_reason(self, linear_predictor):
        bare = open_session(PolicySpec(governor=GovernorSpec("ondemand")))
        assert "bare-governor" in session_plane_ineligibility(bare)
        eligible = open_session(_spec(), predictor=linear_predictor)
        assert session_plane_ineligibility(eligible) is None
