"""Tests for the extensions: screen-aware USTA and CSV import/export."""

import numpy as np
import pytest

from repro.core import ScreenAwareUSTAController, USTAController
from repro.core.predictor import RuntimePredictor
from repro.device.freq_table import nexus4_frequency_table
from repro.sim import (
    SystemLogger,
    load_log_csv,
    load_trace_csv,
    run_workload,
    save_log_csv,
    save_result_csv,
    save_trace_csv,
)
from repro.users.population import paper_population
from repro.workloads import WorkloadSample, WorkloadTrace, build_benchmark

TABLE = nexus4_frequency_table()


def readings(cpu=45.0, battery=38.0):
    return {"cpu": cpu, "battery": battery, "skin": cpu - 5.0, "screen": cpu - 7.0}


class TestScreenAwareUSTA:
    """The linear fixture predictor maps skin = cpu - 5 and screen = cpu - 7."""

    def test_requires_a_screen_model(self, linear_predictor):
        skin_only = RuntimePredictor(skin_model=linear_predictor.skin_model)
        with pytest.raises(ValueError):
            ScreenAwareUSTAController(predictor=skin_only, skin_limit_c=37.0)

    def test_screen_limit_validation(self, linear_predictor):
        with pytest.raises(ValueError):
            ScreenAwareUSTAController(
                predictor=linear_predictor, skin_limit_c=37.0, screen_limit_c=10.0
            )

    def test_no_cap_when_both_surfaces_cool(self, linear_predictor):
        controller = ScreenAwareUSTAController(
            predictor=linear_predictor, skin_limit_c=37.0, screen_limit_c=35.0
        )
        decision = controller.observe(0.0, readings(cpu=36.0), 0.5, 1_512_000)
        assert decision.level_cap is None
        assert decision.predicted_screen_temp_c is not None

    def test_screen_limit_can_be_the_binding_constraint(self, linear_predictor):
        # cpu=41: skin prediction 36 (margin 4 to a 40 C skin limit → no skin cap)
        # but screen prediction 34 (margin 1 to a 35 C screen limit → cap).
        controller = ScreenAwareUSTAController(
            predictor=linear_predictor, skin_limit_c=40.0, screen_limit_c=35.0
        )
        decision = controller.observe(0.0, readings(cpu=41.0), 0.8, 1_512_000)
        assert decision.level_cap == TABLE.max_level - 2

    def test_skin_limit_still_enforced(self, linear_predictor):
        controller = ScreenAwareUSTAController(
            predictor=linear_predictor, skin_limit_c=37.0, screen_limit_c=50.0
        )
        decision = controller.observe(0.0, readings(cpu=43.0), 0.8, 1_512_000)
        assert decision.level_cap == TABLE.min_level

    def test_tighter_of_the_two_caps_wins(self, linear_predictor):
        # skin margin ~1.5 C (one level down); screen margin ~0.3 C (min level).
        controller = ScreenAwareUSTAController(
            predictor=linear_predictor, skin_limit_c=37.0, screen_limit_c=33.8
        )
        decision = controller.observe(0.0, readings(cpu=40.5), 0.8, 1_512_000)
        assert decision.level_cap == TABLE.min_level

    def test_for_user_uses_both_limits(self, linear_predictor):
        profile = paper_population()["b"]
        controller = ScreenAwareUSTAController.for_user(linear_predictor, profile)
        assert controller.skin_limit_c == pytest.approx(profile.skin_limit_c)
        assert controller.screen_limit_c == pytest.approx(profile.screen_limit_c)

    def test_at_least_as_protective_as_skin_only_usta(self, linear_predictor):
        trace = build_benchmark("skype", seed=0, duration_s=900)
        skin_only = USTAController(predictor=linear_predictor, skin_limit_c=37.0)
        screen_aware = ScreenAwareUSTAController(
            predictor=linear_predictor, skin_limit_c=37.0, screen_limit_c=34.0
        )
        base = run_workload(trace, governor="ondemand", thermal_manager=skin_only, seed=0)
        strict = run_workload(trace, governor="ondemand", thermal_manager=screen_aware, seed=0)
        assert strict.max_screen_temp_c <= base.max_screen_temp_c + 0.1
        assert strict.average_frequency_ghz <= base.average_frequency_ghz + 1e-9

    def test_governor_label(self, linear_predictor, platform):
        from repro.governors import OndemandGovernor
        from repro.sim import Simulator

        controller = ScreenAwareUSTAController(predictor=linear_predictor, skin_limit_c=37.0)
        simulator = Simulator(
            platform=platform,
            governor=OndemandGovernor(table=platform.freq_table),
            thermal_manager=controller,
        )
        trace = WorkloadTrace.constant("t", 10.0, WorkloadSample(cpu_demand=0.5))
        result = simulator.run(trace)
        assert result.governor_name == "usta-screen+ondemand"


class TestCsvExport:
    def test_trace_round_trip(self, tmp_path):
        trace = build_benchmark("vellamo", seed=2, duration_s=120)
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert loaded.name == trace.name
        assert loaded.sample_period_s == trace.sample_period_s
        assert len(loaded) == len(trace)
        original = np.array([s.cpu_demand for s in trace])
        restored = np.array([s.cpu_demand for s in loaded])
        assert np.allclose(original, restored, atol=1e-6)
        assert [s.charging for s in loaded] == [s.charging for s in trace]

    def test_trace_load_rejects_other_files(self, tmp_path):
        path = tmp_path / "not_a_trace.csv"
        path.write_text("a,b,c\n1,2,3\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_trace_csv(path)

    def test_result_export_has_step_rows(self, tmp_path):
        result = run_workload(
            WorkloadTrace.constant("t", 30.0, WorkloadSample(cpu_demand=0.7)), seed=0
        )
        path = tmp_path / "result.csv"
        save_result_csv(result, path)
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 31  # header + 30 steps
        assert lines[0].startswith("time_s,")

    def test_log_round_trip(self, tmp_path):
        logger = SystemLogger(period_s=1.0)
        for t in range(5):
            logger.maybe_log(
                float(t),
                "skype",
                {"cpu": 40.0 + t, "battery": 36.0, "skin": 35.0 + t, "screen": 33.0 + t},
                0.5,
                1_134_000,
            )
        path = tmp_path / "log.csv"
        save_log_csv(logger, path)
        loaded = load_log_csv(path)
        assert len(loaded) == 5
        assert loaded.records[0].benchmark == "skype"
        original = logger.to_dataset().target
        restored = loaded.to_dataset().target
        assert np.allclose(original, restored, atol=1e-3)

    def test_log_load_rejects_other_files(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("x,y\n1,2\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_log_csv(path)
