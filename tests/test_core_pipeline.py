"""Tests for the end-to-end training pipeline."""

import pytest

from repro.core.pipeline import (
    PAPER_MODEL_NAMES,
    build_usta_controller,
    collect_training_data,
    default_model_factories,
    evaluate_prediction_models,
    train_runtime_predictor,
)
from repro.sim.logger import FEATURE_NAMES
from repro.users.population import paper_population


class TestCollectTrainingData:
    def test_pools_records_from_all_requested_benchmarks(self, small_training_data):
        assert small_training_data.benchmarks == ("skype", "antutu_tester", "youtube")
        assert small_training_data.num_records > 50

    def test_datasets_have_paper_features(self, small_training_data):
        skin = small_training_data.skin_dataset()
        screen = small_training_data.screen_dataset()
        assert skin.feature_names == FEATURE_NAMES
        assert screen.feature_names == FEATURE_NAMES
        assert len(skin) == len(screen) == small_training_data.num_records

    def test_targets_are_plausible_temperatures(self, small_training_data):
        skin = small_training_data.skin_dataset()
        assert 20.0 < skin.target.min() < skin.target.max() < 60.0

    def test_duration_scale_reduces_dataset(self):
        big = collect_training_data(benchmarks=("youtube",), seed=0, duration_scale=0.1)
        small = collect_training_data(benchmarks=("youtube",), seed=0, duration_scale=0.05)
        assert len(small.logger) < len(big.logger)

    def test_invalid_duration_scale(self):
        with pytest.raises(ValueError):
            collect_training_data(duration_scale=0.0)

    def test_reproducible_for_a_seed(self):
        a = collect_training_data(benchmarks=("vellamo",), seed=5, duration_scale=0.05)
        b = collect_training_data(benchmarks=("vellamo",), seed=5, duration_scale=0.05)
        assert [r.skin_temp_c for r in a.logger.records] == [r.skin_temp_c for r in b.logger.records]


class TestModelFactoriesAndEvaluation:
    def test_factories_cover_the_four_paper_models(self):
        factories = default_model_factories()
        assert set(PAPER_MODEL_NAMES) <= set(factories)
        for name in PAPER_MODEL_NAMES:
            model = factories[name]()
            assert model.name == name
            assert not model.is_fitted

    def test_evaluate_prediction_models_structure(self, small_training_data):
        results = evaluate_prediction_models(
            small_training_data,
            model_names=("linear_regression", "reptree"),
            folds=4,
            seed=0,
        )
        assert set(results) == {"linear_regression", "reptree"}
        for by_target in results.values():
            assert set(by_target) == {"skin", "screen"}
            assert by_target["skin"].error_rate_pct >= 0.0

    def test_trees_are_accurate_on_the_thermal_data(self, small_training_data):
        results = evaluate_prediction_models(
            small_training_data, model_names=("reptree",), folds=4, seed=0
        )
        # The paper reports ~1% error for REPTree; the simulated data is at
        # least as learnable.
        assert results["reptree"]["skin"].error_rate_pct < 3.0

    def test_unknown_model_rejected(self, small_training_data):
        with pytest.raises(KeyError):
            evaluate_prediction_models(small_training_data, model_names=("mystery",), folds=3)


class TestTrainAndBuild:
    def test_train_runtime_predictor_reptree(self, small_training_data):
        predictor = train_runtime_predictor(small_training_data, model_name="reptree", seed=0)
        assert predictor.model_name == "reptree"
        assert predictor.screen_model is not None

    def test_train_without_screen_model(self, small_training_data):
        predictor = train_runtime_predictor(
            small_training_data, model_name="linear_regression", include_screen=False
        )
        assert predictor.screen_model is None

    def test_train_with_registry_fallback_model(self, small_training_data):
        predictor = train_runtime_predictor(small_training_data, model_name="m5p")
        assert predictor.model_name == "m5p"

    def test_build_usta_controller_default_limit(self, small_predictor):
        usta = build_usta_controller(small_predictor)
        assert usta.skin_limit_c == pytest.approx(37.0)

    def test_build_usta_controller_for_profile(self, small_predictor):
        profile = paper_population()["b"]
        usta = build_usta_controller(small_predictor, profile=profile)
        assert usta.skin_limit_c == pytest.approx(profile.skin_limit_c)

    def test_build_usta_controller_custom_limit_and_period(self, small_predictor):
        usta = build_usta_controller(small_predictor, skin_limit_c=39.0, prediction_period_s=5.0)
        assert usta.skin_limit_c == 39.0
        assert usta.prediction_period_s == 5.0
