"""Tests for the simulation engine and experiment helpers."""

import pytest

from repro.device.platform import DevicePlatform
from repro.governors import OndemandGovernor, PerformanceGovernor, PowersaveGovernor
from repro.sim.engine import ManagerDecision, Simulator
from repro.sim.experiments import compare_runs, run_benchmark, run_workload
from repro.sim.logger import SystemLogger
from repro.workloads import WorkloadSample, WorkloadTrace, build_benchmark


def constant_trace(demand, duration_s=120, name="const"):
    return WorkloadTrace.constant(name, duration_s, WorkloadSample(cpu_demand=demand))


class RecordingManager:
    """A fake thermal manager that records observations and applies a fixed cap."""

    name = "recording"

    def __init__(self, cap=None):
        self.cap = cap
        self.observations = []
        self.resets = 0

    def observe(self, time_s, sensor_readings, utilization, frequency_khz):
        self.observations.append((time_s, utilization, frequency_khz))
        return ManagerDecision(level_cap=self.cap, predicted_skin_temp_c=30.0)

    def reset(self):
        self.resets += 1


class TestSimulator:
    def test_runs_whole_trace(self, platform, ondemand):
        simulator = Simulator(platform=platform, governor=ondemand)
        result = simulator.run(constant_trace(0.5, 90))
        assert len(result) == 90
        assert result.workload_name == "const"
        assert result.governor_name == "ondemand"

    def test_ondemand_raises_frequency_under_load(self, platform, ondemand):
        simulator = Simulator(platform=platform, governor=ondemand)
        result = simulator.run(constant_trace(1.0, 60))
        assert result.frequencies_khz()[-1] == platform.freq_table.max_frequency_khz

    def test_idle_trace_keeps_frequency_low(self, platform, ondemand):
        simulator = Simulator(platform=platform, governor=ondemand)
        result = simulator.run(constant_trace(0.02, 60))
        assert result.average_frequency_ghz < 0.6

    def test_heavier_load_runs_hotter(self):
        heavy = run_workload(constant_trace(1.0, 600), governor="performance", seed=0)
        light = run_workload(constant_trace(0.05, 600), governor="performance", seed=0)
        assert heavy.max_skin_temp_c > light.max_skin_temp_c

    def test_reset_between_runs(self, platform, ondemand):
        simulator = Simulator(platform=platform, governor=ondemand)
        first = simulator.run(constant_trace(1.0, 300))
        second = simulator.run(constant_trace(1.0, 300))
        assert first.max_skin_temp_c == pytest.approx(second.max_skin_temp_c)

    def test_warm_start_without_reset(self, platform, ondemand):
        simulator = Simulator(platform=platform, governor=ondemand)
        simulator.run(constant_trace(1.0, 300))
        warm = simulator.run(constant_trace(1.0, 300), reset=False)
        cold = run_workload(constant_trace(1.0, 300), governor="ondemand", seed=7)
        assert warm.max_skin_temp_c > cold.max_skin_temp_c

    def test_initial_temperature_override(self, platform, ondemand):
        simulator = Simulator(platform=platform, governor=ondemand)
        result = simulator.run(constant_trace(0.02, 30), initial_temps={"back_cover": 40.0})
        assert result.skin_temps_c()[0] > 35.0

    def test_manager_is_consulted_and_reset(self, platform, ondemand):
        manager = RecordingManager(cap=None)
        simulator = Simulator(platform=platform, governor=ondemand, thermal_manager=manager)
        simulator.run(constant_trace(0.5, 30))
        assert len(manager.observations) == 30
        assert manager.resets == 1
        assert simulator._governor_label() == "recording+ondemand"

    def test_manager_cap_limits_frequency(self, platform, ondemand):
        manager = RecordingManager(cap=2)
        simulator = Simulator(platform=platform, governor=ondemand, thermal_manager=manager)
        result = simulator.run(constant_trace(1.0, 60))
        # After the first window the cap is in force for every later window.
        assert max(result.frequencies_khz()[2:]) <= platform.freq_table.frequency_at(2)
        assert result.usta_active_fraction > 0.9

    def test_logger_fills_during_run(self, platform, ondemand):
        logger = SystemLogger(period_s=3.0)
        simulator = Simulator(platform=platform, governor=ondemand, logger=logger)
        simulator.run(constant_trace(0.5, 30))
        assert len(logger) == pytest.approx(10, abs=1)

    def test_records_carry_sensor_and_truth_channels(self, platform, ondemand):
        simulator = Simulator(platform=platform, governor=ondemand)
        result = simulator.run(constant_trace(0.9, 30))
        record = result.records[-1]
        assert record.sensor_skin_temp_c == pytest.approx(record.skin_temp_c, abs=1.0)
        assert record.cpu_temp_c > record.skin_temp_c


class TestExperimentHelpers:
    def test_run_workload_defaults_to_ondemand(self):
        result = run_workload(constant_trace(0.5, 30), seed=1)
        assert result.governor_name == "ondemand"

    def test_run_workload_accepts_governor_instance(self):
        governor = PowersaveGovernor()
        result = run_workload(constant_trace(1.0, 30), governor=governor, seed=1)
        assert result.frequencies_khz().max() == governor.table.min_frequency_khz

    def test_run_benchmark_by_name(self):
        result = run_benchmark("youtube", duration_s=60, seed=0)
        assert result.workload_name == "youtube"
        assert len(result) == 60

    def test_run_benchmark_unknown_name(self):
        with pytest.raises(KeyError):
            run_benchmark("doom", duration_s=10)

    def test_compare_runs_performance_vs_powersave(self):
        trace = constant_trace(1.0, 600)
        comparison = compare_runs(
            trace,
            baseline_governor=PerformanceGovernor(),
            treatment_governor=PowersaveGovernor(),
            seed=0,
        )
        assert comparison.peak_skin_reduction_c > 0.5
        assert comparison.frequency_reduction_fraction > 0.5
        assert comparison.throughput_loss_fraction > 0.0

    def test_compare_runs_same_governor_is_neutral(self):
        trace = constant_trace(0.6, 120)
        comparison = compare_runs(trace, baseline_governor="ondemand", seed=3)
        assert comparison.peak_skin_reduction_c == pytest.approx(0.0, abs=1e-9)
        assert comparison.frequency_reduction_fraction == pytest.approx(0.0, abs=1e-9)
