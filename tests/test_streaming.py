"""Tests for the streaming results pipeline.

The contract: streamed execution — records flowing from the simulation
kernel through a :class:`RecordSink` into a sharded on-disk
:class:`StreamingResultStore` — is bit-identical to the in-memory batch path
under every executor, holds no more than ~one cell's records live at a time,
and survives crashes: a truncated final shard line is detected, dropped and
re-run on ``--resume`` instead of being loaded as garbage.
"""

import gc
import json
import weakref

import pytest

from repro.analysis.streaming import SummarySink, stream_summaries, summarize_records
from repro.api.specs import AdapterSpec, GovernorSpec, ManagerSpec, PolicySpec
from repro.runtime import (
    BatchRunner,
    CollectorSink,
    ExperimentCell,
    ExperimentPlan,
    ProcessPoolCellExecutor,
    ResultStore,
    SerialExecutor,
    StoreCorruptionError,
    StreamingResultStore,
    TeeSink,
    VectorizedExecutor,
    run_cell,
    stream_cell,
)
from repro.users.adaptation import WARM_START_TEMPS
from repro.users.comfort import analyse_comfort, analyse_comfort_stream
from repro.workloads.benchmarks import build_benchmark


def _plan(trace, linear_predictor):
    """A small mixed plan: bare governor, static USTA, adaptive USTA, benchmark."""
    adaptive = PolicySpec(
        manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}),
        adapter=AdapterSpec(
            "feedback_step",
            feedback={"true_limit_c": 34.3, "report_period_s": 9.0},
        ),
    )
    plan = ExperimentPlan()
    plan.add(
        ExperimentCell(
            cell_id="baseline",
            trace=trace,
            policy=PolicySpec(governor=GovernorSpec("ondemand")),
            seed=2,
            metadata={"scheme": "baseline", "user_id": "b"},
        )
    )
    plan.add(
        ExperimentCell(
            cell_id="usta",
            trace=trace,
            policy=PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 33.0})),
            predictor=linear_predictor,
            seed=2,
            metadata={"scheme": "usta", "user_id": "b"},
        )
    )
    plan.add(
        ExperimentCell(
            cell_id="adaptive",
            trace=trace,
            policy=adaptive,
            predictor=linear_predictor,
            seed=2,
            initial_temps=WARM_START_TEMPS,
            metadata={"scheme": "adaptive", "user_id": "b"},
        )
    )
    plan.add(
        ExperimentCell(
            cell_id="bench",
            benchmark="youtube",
            duration_s=60.0,
            seed=7,
            metadata={"scheme": "bench", "user_id": "b"},
        )
    )
    return plan


@pytest.fixture()
def trace():
    return build_benchmark("skype", seed=2, duration_s=120)


class TestStreamedExecutorParity:
    @pytest.mark.parametrize(
        "executor",
        [
            SerialExecutor(),
            ProcessPoolCellExecutor(max_workers=2),
            VectorizedExecutor(),
        ],
        ids=["serial", "process-pool", "vectorized"],
    )
    def test_streamed_store_bit_identical_to_batch(
        self, tmp_path, trace, linear_predictor, executor
    ):
        plan = _plan(trace, linear_predictor)
        batch = BatchRunner(executor=SerialExecutor()).run(plan)
        store = StreamingResultStore(tmp_path / "stream", max_cells_per_shard=2)
        executed = BatchRunner(executor=executor).run_stream(plan, store)
        store.close()
        assert executed == len(plan)

        loaded = StreamingResultStore(tmp_path / "stream").load()
        assert len(loaded) == len(plan)
        for cell in plan:
            got = loaded.get(cell.cell_id)
            want = batch.get(cell.cell_id)
            assert got.result.records == want.result.records
            assert got.result.governor_name == want.result.governor_name
            assert got.result.dt_s == want.result.dt_s

    def test_shard_lines_byte_identical_to_batch_save(self, tmp_path, trace, linear_predictor):
        plan = _plan(trace, linear_predictor)
        batch = BatchRunner(executor=SerialExecutor()).run(plan)
        save_path = tmp_path / "batch.jsonl"
        batch.save(save_path)

        store = StreamingResultStore(tmp_path / "stream", max_cells_per_shard=3)
        BatchRunner(executor=SerialExecutor()).run_stream(plan, store)
        store.close()

        def stripped(lines):
            out = {}
            for line in lines:
                payload = json.loads(line)
                payload["wall_time_s"] = 0.0
                out[payload["cell"]["cell_id"]] = json.dumps(
                    payload, separators=(",", ":")
                )
            return out

        saved = stripped(save_path.read_text().splitlines())
        shard_lines = []
        for shard in sorted((tmp_path / "stream").glob("shard-*.jsonl")):
            shard_lines.extend(shard.read_text().splitlines())
        assert stripped(shard_lines) == saved

    def test_shard_rotation_and_completed_ids(self, tmp_path, trace, linear_predictor):
        plan = _plan(trace, linear_predictor)
        store = StreamingResultStore(tmp_path / "s", max_cells_per_shard=2)
        BatchRunner(executor=SerialExecutor()).run_stream(plan, store)
        store.close()
        shards = sorted(p.name for p in (tmp_path / "s").glob("shard-*.jsonl"))
        assert shards == ["shard-00000.jsonl", "shard-00001.jsonl"]
        reopened = StreamingResultStore(tmp_path / "s")
        assert reopened.completed_cell_ids == {cell.cell_id for cell in plan}
        assert len(reopened) == len(plan)

    def test_duplicate_cell_rejected(self, tmp_path):
        trace = build_benchmark("skype", seed=0, duration_s=30)
        cell = ExperimentCell(cell_id="x", trace=trace, seed=0)
        store = StreamingResultStore(tmp_path / "s")
        stream_cell(cell, store)
        with pytest.raises(ValueError, match="duplicate"):
            stream_cell(cell, store)
        store.close()


class TestBoundedMemory:
    def test_live_record_footprint_stays_under_one_cell(self, tmp_path):
        """A multi-cell streamed sweep never holds more than ~one cell's records."""
        trace = build_benchmark("skype", seed=0, duration_s=120)
        cells = [
            ExperimentCell(cell_id=f"c{i}", trace=trace, seed=i) for i in range(4)
        ]
        steps_per_cell = len(trace)

        refs = []
        peak = 0

        class Watcher:
            """Tee-side sink tracking how many emitted records are still alive."""

            def begin_cell(self, cell, workload_name, governor_name, dt_s):
                pass

            def emit(self, record):
                nonlocal peak
                refs.append(weakref.ref(record))
                alive = sum(1 for ref in refs if ref() is not None)
                peak = max(peak, alive)

            def end_cell(self, wall_time_s=0.0, logger=None):
                pass

        store = StreamingResultStore(tmp_path / "s")
        BatchRunner(executor=SerialExecutor()).run_stream(
            ExperimentPlan(cells), TeeSink(store, Watcher())
        )
        store.close()
        gc.collect()

        assert len(refs) == 4 * steps_per_cell  # every record was emitted ...
        assert peak <= steps_per_cell  # ... but never a full cell was live at once
        # The streamed records are written out and dropped, not retained.
        assert sum(1 for ref in refs if ref() is not None) == 0


class TestCrashSafeResume:
    def _populate(self, directory, plan, upto):
        """Stream the first ``upto`` cells of the plan into the directory."""
        store = StreamingResultStore(directory, max_cells_per_shard=2)
        for cell in list(plan)[:upto]:
            stream_cell(cell, store)
        store.close()
        return store

    def test_truncated_final_line_is_recovered_and_rerun(
        self, tmp_path, trace, linear_predictor
    ):
        plan = _plan(trace, linear_predictor)
        batch = BatchRunner(executor=SerialExecutor()).run(plan)
        directory = tmp_path / "s"
        self._populate(directory, plan, upto=3)

        # Simulate a crash mid-cell: an unterminated, half-written line.
        shards = sorted(directory.glob("shard-*.jsonl"))
        with open(shards[-1], "a", encoding="utf-8") as fh:
            fh.write('{"cell":{"cell_id":"bench","benchmark":"youtube"')

        store = StreamingResultStore(directory, max_cells_per_shard=2)
        assert store.recovered_tail is not None
        assert "bench" in store.recovered_tail
        assert store.completed_cell_ids == {"baseline", "usta", "adaptive"}

        executed = BatchRunner(executor=SerialExecutor()).run_stream(
            plan, store, skip=store.completed_cell_ids
        )
        store.close()
        assert executed == 1  # only the interrupted cell re-ran
        loaded = StreamingResultStore(directory).load()
        for cell in plan:
            assert loaded.get(cell.cell_id).result.records == batch.get(
                cell.cell_id
            ).result.records

    def test_corrupt_terminated_final_line_is_dropped(self, tmp_path, trace, linear_predictor):
        plan = _plan(trace, linear_predictor)
        directory = tmp_path / "s"
        self._populate(directory, plan, upto=2)
        shards = sorted(directory.glob("shard-*.jsonl"))
        with open(shards[-1], "a", encoding="utf-8") as fh:
            fh.write('{"cell": not json}\n')
        store = StreamingResultStore(directory)
        assert store.recovered_tail is not None
        assert store.completed_cell_ids == {"baseline", "usta"}
        # The recovered store loads cleanly — no garbage cell.
        assert {e.cell.cell_id for e in store.iter_results()} == {"baseline", "usta"}

    def test_mid_store_corruption_raises(self, tmp_path, trace, linear_predictor):
        plan = _plan(trace, linear_predictor)
        directory = tmp_path / "s"
        self._populate(directory, plan, upto=3)
        first = sorted(directory.glob("shard-*.jsonl"))[0]
        lines = first.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # damage a non-final line
        first.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreCorruptionError, match="not the store's final line"):
            StreamingResultStore(directory)

    def test_resume_skips_and_totals_match_full_batch(self, tmp_path, trace, linear_predictor):
        plan = _plan(trace, linear_predictor)
        batch = BatchRunner(executor=SerialExecutor()).run(plan)
        directory = tmp_path / "s"
        self._populate(directory, plan, upto=2)

        store = StreamingResultStore(directory, max_cells_per_shard=2)
        executed = BatchRunner(executor=VectorizedExecutor()).run_stream(
            plan, store, skip=store.completed_cell_ids
        )
        store.close()
        assert executed == 2
        loaded = StreamingResultStore(directory).load()
        assert len(loaded) == len(plan)
        for cell in plan:
            assert loaded.get(cell.cell_id).result.records == batch.get(
                cell.cell_id
            ).result.records


class TestWorkloadFieldRoundTrip:
    def test_save_load_save_is_stable_for_trace_cells(self, tmp_path, trace, linear_predictor):
        """A loaded detached-trace cell must re-save as workload="trace"."""
        plan = _plan(trace, linear_predictor)
        store = BatchRunner(executor=SerialExecutor()).run(plan)
        first = tmp_path / "one.jsonl"
        second = tmp_path / "two.jsonl"
        store.save(first)
        ResultStore.load(first).save(second)
        assert first.read_text() == second.read_text()
        reloaded = ResultStore.load(second)
        assert reloaded.get("baseline").cell.detached_trace
        with pytest.raises(ValueError, match="cannot be re-executed"):
            reloaded.get("baseline").cell.build_trace()


class TestStreamingAggregates:
    def test_summary_matches_batch_reductions(self, trace, linear_predictor):
        entry = run_cell(
            ExperimentCell(
                cell_id="usta",
                trace=trace,
                policy=PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 33.0})),
                predictor=linear_predictor,
                seed=2,
            )
        )
        result = entry.result
        summary = summarize_records(result.records, result.dt_s, limit_c=33.0)
        # Maxima, counts and over-limit times are exact.
        assert summary.max_skin_temp_c == result.max_skin_temp_c
        assert summary.max_screen_temp_c == result.max_screen_temp_c
        assert summary.max_cpu_temp_c == result.max_cpu_temp_c
        assert summary.usta_active_fraction == result.usta_active_fraction
        assert summary.time_over_limit_s == result.comfort_against(33.0).time_over_limit_s
        assert summary.n_records == len(result)
        assert summary.final_comfort_limit_c == result.records[-1].comfort_limit_c
        # Running means agree with numpy's pairwise sums to float precision.
        assert summary.average_frequency_ghz == pytest.approx(
            result.average_frequency_ghz, rel=1e-12
        )
        assert summary.average_power_w == pytest.approx(result.average_power_w, rel=1e-12)
        assert summary.throughput_ratio == pytest.approx(result.throughput_ratio, rel=1e-12)

    def test_summary_sink_collects_per_cell(self, tmp_path, trace, linear_predictor):
        plan = _plan(trace, linear_predictor)
        sink = SummarySink(limit_for=lambda cell: 34.0)
        store = StreamingResultStore(tmp_path / "s")
        BatchRunner(executor=SerialExecutor()).run_stream(plan, TeeSink(store, sink))
        store.close()
        assert set(sink.by_id) == {cell.cell_id for cell in plan}
        # The post-hoc streaming pass over the shards reproduces the live sink.
        replay = stream_summaries(
            StreamingResultStore(tmp_path / "s"), limit_for=lambda cell: 34.0
        )
        for cell_id, entry in sink.by_id.items():
            assert replay[cell_id].summary.max_skin_temp_c == entry.summary.max_skin_temp_c
            assert replay[cell_id].summary.time_over_limit_s == entry.summary.time_over_limit_s

    def test_analyse_comfort_stream_matches_array_form(self):
        temps = [30.0, 33.5, 36.2, 38.9, 37.1, 33.0, 41.5, 29.9]
        batch = analyse_comfort(temps, 36.0, dt_s=2.0, user_id="u")
        stream = analyse_comfort_stream(iter(temps), 36.0, dt_s=2.0, user_id="u")
        assert stream.time_over_limit_s == batch.time_over_limit_s
        assert stream.peak_temp_c == batch.peak_temp_c
        assert stream.peak_exceedance_c == batch.peak_exceedance_c
        assert stream.onset_time_s == batch.onset_time_s
        assert stream.duration_s == batch.duration_s
        assert stream.mean_exceedance_c == pytest.approx(batch.mean_exceedance_c, rel=1e-12)
        with pytest.raises(ValueError, match="empty"):
            analyse_comfort_stream(iter([]), 36.0)

    def test_collector_sink_reproduces_run_cell(self, trace):
        cell = ExperimentCell(cell_id="x", trace=trace, seed=3)
        collector = CollectorSink()
        stream_cell(cell, collector)
        assert collector.results[0].result.records == run_cell(cell).result.records


class TestStreamedTable1AndFrontier:
    def test_reproduce_table1_streaming_matches_batch(self, tmp_path, small_context):
        from repro.analysis.table1 import reproduce_table1

        kwargs = dict(benchmarks=("skype", "youtube"), duration_scale=0.02)
        batch_rows = reproduce_table1(small_context, **kwargs)
        stream_rows = reproduce_table1(
            small_context, stream_to=tmp_path / "t1", **kwargs
        )
        for b, s in zip(batch_rows, stream_rows):
            assert s.benchmark == b.benchmark
            assert s.baseline_max_skin_c == b.baseline_max_skin_c
            assert s.usta_max_skin_c == b.usta_max_skin_c
            assert s.baseline_avg_freq_ghz == pytest.approx(b.baseline_avg_freq_ghz, rel=1e-12)
        # Refuses to clobber a populated directory without resume ...
        with pytest.raises(ValueError, match="resume"):
            reproduce_table1(small_context, stream_to=tmp_path / "t1", **kwargs)
        # ... and resumes it without re-running anything, to the same rows.
        resumed = reproduce_table1(
            small_context, stream_to=tmp_path / "t1", resume=True, **kwargs
        )
        for s, r in zip(stream_rows, resumed):
            assert r.baseline_max_skin_c == s.baseline_max_skin_c
            assert r.usta_max_skin_c == s.usta_max_skin_c

    def test_frontier_streaming_matches_batch(self, tmp_path, small_context):
        from repro.analysis.adaptation import comfort_performance_frontier

        kwargs = dict(
            adapters=("quantile_tracker",),
            duration_s=90.0,
            user_ids=("b", "g"),
        )
        batch_points = comfort_performance_frontier(small_context, **kwargs)
        stream_points = comfort_performance_frontier(
            small_context, stream_to=tmp_path / "fr", **kwargs
        )
        assert len(stream_points) == len(batch_points)
        for b, s in zip(batch_points, stream_points):
            assert (s.user_id, s.scheme) == (b.user_id, b.scheme)
            assert s.discomfort_minutes == b.discomfort_minutes
            assert s.final_limit_c == b.final_limit_c
            assert s.throughput_loss == pytest.approx(b.throughput_loss, rel=1e-12)
        # A populated directory is refused without resume ...
        with pytest.raises(ValueError, match="resume"):
            comfort_performance_frontier(small_context, stream_to=tmp_path / "fr", **kwargs)
        # ... and with resume, foreign cells another plan left behind are
        # ignored (regression: they used to crash the summary fold).
        foreign = ExperimentCell(
            cell_id="foreign", benchmark="youtube", duration_s=20.0, seed=9,
            metadata={"scheme": "other"},  # note: no user_id
        )
        extra = StreamingResultStore(tmp_path / "fr")
        stream_cell(foreign, extra)
        extra.close()
        resumed = comfort_performance_frontier(
            small_context, stream_to=tmp_path / "fr", resume=True, **kwargs
        )
        for s, r in zip(stream_points, resumed):
            assert r.discomfort_minutes == s.discomfort_minutes
            assert r.final_limit_c == s.final_limit_c
