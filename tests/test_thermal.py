"""Tests for the thermal network, solver and Nexus 4 calibration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.thermal import (
    AmbientConditions,
    HandContact,
    Nexus4ThermalParameters,
    ThermalNetwork,
    ThermalSolver,
    build_nexus4_network,
    steady_state,
)
from repro.thermal.ambient import AMBIENT_NODE, HAND_NODE
from repro.thermal.nexus4 import BACK_COVER_NODE, CPU_NODE, SCREEN_NODE


def two_node_network(cap=10.0, g_internal=1.0, g_ambient=0.5, ambient=20.0):
    """A tiny heater->cover->ambient chain used by the unit tests."""
    net = ThermalNetwork()
    net.add_node("heater", capacitance_j_per_c=cap, initial_temp_c=ambient)
    net.add_node("cover", capacitance_j_per_c=cap, initial_temp_c=ambient)
    net.add_node("ambient", boundary=True, initial_temp_c=ambient)
    net.add_conductance("heater", "cover", g_internal)
    net.add_conductance("cover", "ambient", g_ambient)
    net.assemble()
    return net


class TestNetworkConstruction:
    def test_duplicate_node_rejected(self):
        net = ThermalNetwork()
        net.add_node("a")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_node("a")

    def test_conductance_requires_existing_nodes(self):
        net = ThermalNetwork()
        net.add_node("a")
        with pytest.raises(KeyError):
            net.add_conductance("a", "missing", 1.0)

    def test_self_conductance_rejected(self):
        net = ThermalNetwork()
        net.add_node("a")
        with pytest.raises(ValueError):
            net.add_conductance("a", "a", 1.0)

    def test_non_positive_conductance_rejected(self):
        net = ThermalNetwork()
        net.add_node("a")
        net.add_node("b")
        with pytest.raises(ValueError):
            net.add_conductance("a", "b", 0.0)

    def test_internal_node_needs_positive_capacitance(self):
        net = ThermalNetwork()
        with pytest.raises(ValueError):
            net.add_node("a", capacitance_j_per_c=0.0)

    def test_assembly_requires_internal_node(self):
        net = ThermalNetwork()
        net.add_node("ambient", boundary=True)
        with pytest.raises(RuntimeError):
            net.assemble()

    def test_empty_network_cannot_assemble(self):
        with pytest.raises(RuntimeError):
            ThermalNetwork().assemble()

    def test_no_mutation_after_assembly(self):
        net = two_node_network()
        with pytest.raises(RuntimeError):
            net.add_node("late")
        with pytest.raises(RuntimeError):
            net.add_conductance("heater", "cover", 1.0)

    def test_access_before_assembly_raises(self):
        net = ThermalNetwork()
        net.add_node("a")
        with pytest.raises(RuntimeError):
            net.temperatures()


class TestNetworkState:
    def test_temperatures_and_lookup(self):
        net = two_node_network(ambient=21.0)
        temps = net.temperatures()
        assert temps == {"heater": 21.0, "cover": 21.0, "ambient": 21.0}
        assert net.temperature_of("heater") == 21.0
        with pytest.raises(KeyError):
            net.temperature_of("nope")

    def test_set_temperatures(self):
        net = two_node_network()
        net.set_temperatures({"heater": 40.0, "ambient": 25.0})
        assert net.temperature_of("heater") == 40.0
        assert net.temperature_of("ambient") == 25.0
        with pytest.raises(KeyError):
            net.set_temperatures({"ghost": 1.0})

    def test_set_boundary_temperature_requires_boundary(self):
        net = two_node_network()
        with pytest.raises(KeyError):
            net.set_boundary_temperature("heater", 30.0)

    def test_power_vector_routing(self):
        net = two_node_network()
        vec = net.power_vector({"heater": 2.0, "ambient": 5.0})
        assert vec[list(net.internal_names).index("heater")] == 2.0
        with pytest.raises(KeyError):
            net.power_vector({"ghost": 1.0})

    def test_reset_restores_initial_temperatures(self):
        net = two_node_network(ambient=20.0)
        net.set_temperatures({"heater": 55.0})
        net.reset()
        assert net.temperature_of("heater") == 20.0

    def test_runtime_boundary_conductance_change(self):
        net = two_node_network()
        # Strengthening the cover-ambient coupling at run time is allowed.
        net.set_conductance("cover", "ambient", 1.0)
        with pytest.raises(KeyError):
            net.set_conductance("heater", "cover", 2.0)


class TestSolver:
    def test_steady_state_matches_hand_calculation(self):
        # 1 W into the heater, series conductances 1.0 and 0.5 to a 20 C ambient:
        # cover sits at 20 + 1/0.5 = 22, heater at 22 + 1/1.0 = 23.
        net = two_node_network(g_internal=1.0, g_ambient=0.5, ambient=20.0)
        temps = steady_state(net, {"heater": 1.0})
        assert temps["cover"] == pytest.approx(22.0)
        assert temps["heater"] == pytest.approx(23.0)
        assert temps["ambient"] == 20.0

    def test_transient_converges_to_steady_state(self):
        net = two_node_network()
        target = steady_state(net, {"heater": 1.0})
        solver = ThermalSolver(net)
        solver.run(duration_s=2000.0, dt_s=1.0, power_w={"heater": 1.0})
        assert net.temperature_of("heater") == pytest.approx(target["heater"], abs=0.05)
        assert net.temperature_of("cover") == pytest.approx(target["cover"], abs=0.05)

    def test_zero_power_stays_at_ambient(self):
        net = two_node_network(ambient=22.0)
        solver = ThermalSolver(net)
        solver.run(duration_s=500.0, dt_s=1.0, power_w={})
        assert net.temperature_of("heater") == pytest.approx(22.0, abs=1e-6)

    def test_explicit_and_implicit_agree(self):
        net_a = two_node_network()
        net_b = two_node_network()
        ThermalSolver(net_a, method="implicit").run(300.0, 1.0, {"heater": 1.5})
        ThermalSolver(net_b, method="explicit").run(300.0, 1.0, {"heater": 1.5})
        assert net_a.temperature_of("cover") == pytest.approx(net_b.temperature_of("cover"), abs=0.2)

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            ThermalSolver(two_node_network(), method="magic")

    def test_non_positive_step_rejected(self):
        solver = ThermalSolver(two_node_network())
        with pytest.raises(ValueError):
            solver.step(0.0, {})

    def test_temperature_never_drops_below_ambient_with_heating(self):
        net = two_node_network(ambient=20.0)
        solver = ThermalSolver(net)
        for _ in range(200):
            temps = solver.step(1.0, {"heater": 0.8})
            assert all(t >= 20.0 - 1e-9 for t in temps.values())

    @given(power=st.floats(0.0, 6.0), dt=st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_heating_from_ambient(self, power, dt):
        net = two_node_network()
        solver = ThermalSolver(net)
        previous = net.temperature_of("heater")
        for _ in range(30):
            temps = solver.step(dt, {"heater": power})
            assert temps["heater"] >= previous - 1e-9
            previous = temps["heater"]

    @given(power=st.floats(0.1, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_steady_state_scales_linearly_with_power(self, power):
        net = two_node_network(ambient=20.0)
        one_watt = steady_state(net, {"heater": 1.0})
        scaled = steady_state(net, {"heater": power})
        assert scaled["heater"] - 20.0 == pytest.approx(power * (one_watt["heater"] - 20.0), rel=1e-6)


class TestNexus4Model:
    def test_network_contains_expected_nodes(self):
        net = build_nexus4_network()
        for node in (CPU_NODE, "board", "battery", BACK_COVER_NODE, "back_cover_upper", SCREEN_NODE):
            assert node in net.internal_names
        assert AMBIENT_NODE in net.boundary_names
        assert HAND_NODE in net.boundary_names

    def test_initial_state_is_ambient(self):
        params = Nexus4ThermalParameters(ambient=AmbientConditions(air_temp_c=24.0))
        net = build_nexus4_network(params)
        assert all(
            net.temperature_of(name) == pytest.approx(24.0) for name in net.internal_names
        )

    def test_steady_state_full_load_reaches_paper_range(self):
        # ~4 W of sustained platform power drives the back cover into the
        # low-to-mid 40s C, consistent with the paper's hottest measurements.
        net = build_nexus4_network()
        temps = steady_state(net, {CPU_NODE: 2.6, SCREEN_NODE: 0.5, "board": 0.8, "battery": 0.2})
        assert 40.0 < temps[BACK_COVER_NODE] < 50.0
        assert temps[CPU_NODE] > temps[BACK_COVER_NODE]

    def test_back_cover_hotter_than_screen_under_soc_load(self):
        net = build_nexus4_network()
        temps = steady_state(net, {CPU_NODE: 2.5, "board": 0.5})
        assert temps[BACK_COVER_NODE] > temps[SCREEN_NODE]

    def test_skin_time_constant_is_minutes(self):
        # After one minute of full load the skin has barely moved; after 20
        # minutes it is clearly warm — i.e. the response is minutes-scale.
        net = build_nexus4_network()
        solver = ThermalSolver(net)
        power = {CPU_NODE: 2.6, SCREEN_NODE: 0.5, "board": 0.8, "battery": 0.2}
        solver.run(60.0, 1.0, power)
        after_1min = net.temperature_of(BACK_COVER_NODE)
        solver.run(19 * 60.0, 1.0, power)
        after_20min = net.temperature_of(BACK_COVER_NODE)
        assert after_1min < 27.0
        assert after_20min > 36.0

    def test_custom_parameters_change_the_response(self):
        hot = Nexus4ThermalParameters(back_cover_ambient=0.02)
        cool = Nexus4ThermalParameters(back_cover_ambient=0.20)
        temps_hot = steady_state(build_nexus4_network(hot), {CPU_NODE: 2.0})
        temps_cool = steady_state(build_nexus4_network(cool), {CPU_NODE: 2.0})
        assert temps_hot[BACK_COVER_NODE] > temps_cool[BACK_COVER_NODE]


class TestAmbientAndHand:
    def test_ambient_apply_sets_boundaries(self):
        net = build_nexus4_network()
        AmbientConditions(air_temp_c=30.0, hand_temp_c=34.0).apply(net)
        assert net.temperature_of(AMBIENT_NODE) == 30.0
        assert net.temperature_of(HAND_NODE) == 34.0

    def test_hand_contact_warms_an_idle_phone(self):
        # A 33 C palm warms a cold, idle phone's back cover.
        net = build_nexus4_network()
        hand = HandContact(conductance_w_per_c=0.15)
        hand.touch(net)
        ThermalSolver(net).run(1200.0, 1.0, {})
        assert net.temperature_of(BACK_COVER_NODE) > 24.0

    def test_hand_contact_effect_is_small_when_active(self):
        # The paper's observation: touch barely changes the exterior
        # temperature when the phone is under load.
        power = {CPU_NODE: 2.5, SCREEN_NODE: 0.5, "board": 0.7}

        held = build_nexus4_network()
        HandContact().touch(held)
        ThermalSolver(held).run(1800.0, 1.0, power)

        untouched = build_nexus4_network()
        HandContact().release(untouched)
        ThermalSolver(untouched).run(1800.0, 1.0, power)

        difference = abs(
            held.temperature_of(BACK_COVER_NODE) - untouched.temperature_of(BACK_COVER_NODE)
        )
        assert difference < 2.0

    def test_release_removes_coupling(self):
        net = build_nexus4_network()
        hand = HandContact()
        hand.touch(net)
        hand.release(net)
        assert not hand.touching
