"""Tests for USTA's throttle policy (the paper's margin → frequency-cap rules)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policy import ThrottlePolicy, ThrottleStep
from repro.device.freq_table import nexus4_frequency_table

TABLE = nexus4_frequency_table()


class TestPaperPolicy:
    """The exact rules from §III.B of the paper, with a 37 °C limit."""

    LIMIT = 37.0

    def setup_method(self):
        self.policy = ThrottlePolicy.paper_default()

    def cap(self, predicted):
        return self.policy.cap_for_prediction(predicted, self.LIMIT, TABLE)

    def test_no_action_far_from_limit(self):
        assert self.cap(30.0) is None
        assert self.cap(34.9) is None
        assert self.cap(35.0) is None  # exactly 2 C below: activation threshold

    def test_one_level_down_between_one_and_two_degrees(self):
        assert self.cap(35.5) == TABLE.max_level - 1
        assert self.cap(35.9) == TABLE.max_level - 1

    def test_two_levels_down_between_half_and_one_degree(self):
        assert self.cap(36.0) == TABLE.max_level - 2
        assert self.cap(36.4) == TABLE.max_level - 2

    def test_minimum_frequency_within_half_degree(self):
        assert self.cap(36.6) == TABLE.min_level
        assert self.cap(37.0) == TABLE.min_level

    def test_minimum_frequency_above_limit(self):
        assert self.cap(38.5) == TABLE.min_level
        assert self.cap(45.0) == TABLE.min_level

    def test_activation_margin_property(self):
        assert self.policy.activation_margin_c == pytest.approx(2.0)

    @given(predicted=st.floats(20.0, 50.0))
    def test_cap_is_monotone_in_prediction(self, predicted):
        # Hotter predictions never allow a higher frequency cap.
        cooler_cap = self.cap(predicted - 0.5)
        hotter_cap = self.cap(predicted)
        cooler_value = TABLE.max_level if cooler_cap is None else cooler_cap
        hotter_value = TABLE.max_level if hotter_cap is None else hotter_cap
        assert hotter_value <= cooler_value

    @given(predicted=st.floats(20.0, 50.0), limit=st.floats(30.0, 45.0))
    def test_cap_is_always_a_valid_level_or_none(self, predicted, limit):
        cap = self.policy.cap_for_prediction(predicted, limit, TABLE)
        assert cap is None or 0 <= cap <= TABLE.max_level


class TestCustomPolicies:
    def test_aggressive_policy_activates_earlier(self):
        aggressive = ThrottlePolicy.aggressive()
        default = ThrottlePolicy.paper_default()
        assert aggressive.activation_margin_c > default.activation_margin_c
        # 2.5 C below the limit: the default does nothing, aggressive caps.
        assert default.cap_for_margin(2.5, TABLE) is None
        assert aggressive.cap_for_margin(2.5, TABLE) is not None

    def test_gentle_policy_activates_later(self):
        gentle = ThrottlePolicy.gentle()
        assert gentle.activation_margin_c == pytest.approx(1.0)
        assert gentle.cap_for_margin(1.5, TABLE) is None
        assert gentle.cap_for_margin(0.8, TABLE) == TABLE.max_level - 1

    def test_with_activation_margin_scales_breakpoints(self):
        policy = ThrottlePolicy.with_activation_margin(4.0)
        assert policy.activation_margin_c == pytest.approx(4.0)
        assert policy.cap_for_margin(3.0, TABLE) == TABLE.max_level - 1
        assert policy.cap_for_margin(1.5, TABLE) == TABLE.max_level - 2
        assert policy.cap_for_margin(0.5, TABLE) == TABLE.min_level

    def test_with_activation_margin_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ThrottlePolicy.with_activation_margin(0.0)

    def test_steps_must_be_strictly_decreasing(self):
        with pytest.raises(ValueError):
            ThrottlePolicy(
                steps=(
                    ThrottleStep(1.0, 1),
                    ThrottleStep(2.0, 2),
                )
            )
        with pytest.raises(ValueError):
            ThrottlePolicy(steps=(ThrottleStep(1.0, 1), ThrottleStep(1.0, 2)))

    def test_empty_policy_rejected(self):
        with pytest.raises(ValueError):
            ThrottlePolicy(steps=())

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            ThrottlePolicy(steps=(ThrottleStep(2.0, -1),))

    def test_cap_for_margin_with_none_step_goes_to_min(self):
        policy = ThrottlePolicy(steps=(ThrottleStep(1.0, None),))
        assert policy.cap_for_margin(0.5, TABLE) == TABLE.min_level

    def test_cap_levels_clamped_to_table(self):
        policy = ThrottlePolicy(steps=(ThrottleStep(2.0, 50),))
        assert policy.cap_for_margin(1.0, TABLE) == TABLE.min_level
