"""Tests for the runtime predictor and the USTA controller."""

import numpy as np
import pytest

from repro.core.policy import ThrottlePolicy
from repro.core.predictor import PredictionFeatures, RuntimePredictor
from repro.core.usta import USTAController
from repro.device.freq_table import nexus4_frequency_table
from repro.governors import OndemandGovernor
from repro.ml.linear import LinearRegression
from repro.sim.engine import Simulator
from repro.sim.experiments import run_workload
from repro.users.population import paper_population
from repro.workloads import WorkloadSample, WorkloadTrace

TABLE = nexus4_frequency_table()


def readings(cpu=45.0, battery=38.0):
    return {"cpu": cpu, "battery": battery, "skin": cpu - 5.0, "screen": cpu - 7.0}


class TestPredictionFeatures:
    def test_vector_order_matches_training_columns(self):
        features = PredictionFeatures(45.0, 38.0, 0.6, 1_134_000.0)
        assert features.as_vector().tolist() == [45.0, 38.0, 0.6, 1_134_000.0]

    def test_from_readings(self):
        features = PredictionFeatures.from_readings(readings(50.0, 39.0), 0.7, 918_000)
        assert features.cpu_temp_c == 50.0
        assert features.battery_temp_c == 39.0
        assert features.utilization == 0.7
        assert features.frequency_khz == 918_000.0


class TestRuntimePredictor:
    def test_predicts_skin_and_screen(self, linear_predictor):
        features = PredictionFeatures(45.0, 40.0, 0.5, 1_026_000.0)
        prediction = linear_predictor.predict(features)
        assert prediction.skin_temp_c == pytest.approx(40.0, abs=0.5)
        assert prediction.screen_temp_c == pytest.approx(38.0, abs=0.5)
        assert prediction.latency_s >= 0.0

    def test_screen_prediction_can_be_skipped(self, linear_predictor):
        prediction = linear_predictor.predict(
            PredictionFeatures(45.0, 40.0, 0.5, 1_026_000.0), predict_screen=False
        )
        assert prediction.screen_temp_c is None

    def test_predict_from_readings(self, linear_predictor):
        prediction = linear_predictor.predict_from_readings(readings(cpu=50.0), 0.4, 918_000)
        assert prediction.skin_temp_c == pytest.approx(45.0, abs=0.5)

    def test_requires_fitted_models(self):
        with pytest.raises(ValueError):
            RuntimePredictor(skin_model=LinearRegression())

    def test_rejects_unknown_feature_order(self, linear_predictor):
        with pytest.raises(ValueError):
            RuntimePredictor(
                skin_model=linear_predictor.skin_model,
                feature_names=("a", "b", "c", "d"),
            )

    def test_model_name_reported(self, linear_predictor, small_predictor):
        assert linear_predictor.model_name == "linear_regression"
        assert small_predictor.model_name == "reptree"

    def test_measure_overhead(self, linear_predictor):
        features = [PredictionFeatures(40.0 + i, 37.0, 0.5, 1_026_000.0) for i in range(5)]
        overhead = linear_predictor.measure_overhead(features, repeats=3)
        assert overhead["skin_latency_s"] > 0.0
        assert overhead["total_latency_s"] >= overhead["skin_latency_s"]
        # Far below the paper's 12 ms budget per 3-second window.
        assert overhead["total_latency_s"] < 0.05

    def test_measure_overhead_requires_samples(self, linear_predictor):
        with pytest.raises(ValueError):
            linear_predictor.measure_overhead([])

    def test_trained_small_predictor_is_accurate_on_training_data(
        self, small_predictor, small_training_data
    ):
        data = small_training_data.skin_dataset()
        predictions = small_predictor.skin_model.predict(data.features)
        mae = float(np.mean(np.abs(predictions - data.target)))
        assert mae < 0.5


class TestUSTAController:
    """The controller is driven directly through its observe() interface.

    The linear predictor maps ``skin = cpu_temp - 5``; with the default 37 °C
    limit the activation threshold (35 °C) corresponds to a 40 °C CPU reading.
    """

    def make_usta(self, limit=37.0, period=3.0, **kwargs):
        predictor = kwargs.pop("predictor")
        return USTAController(
            predictor=predictor, skin_limit_c=limit, prediction_period_s=period, **kwargs
        )

    def test_no_cap_when_cool(self, linear_predictor):
        usta = self.make_usta(predictor=linear_predictor)
        decision = usta.observe(0.0, readings(cpu=35.0), 0.5, 1_512_000)
        assert decision.level_cap is None
        assert not decision.active
        assert decision.predicted_skin_temp_c == pytest.approx(30.0, abs=0.5)

    def test_one_level_cap_inside_two_degrees(self, linear_predictor):
        usta = self.make_usta(predictor=linear_predictor)
        decision = usta.observe(0.0, readings(cpu=40.6), 0.9, 1_512_000)
        assert decision.level_cap == TABLE.max_level - 1

    def test_two_level_cap_inside_one_degree(self, linear_predictor):
        usta = self.make_usta(predictor=linear_predictor)
        decision = usta.observe(0.0, readings(cpu=41.2), 0.9, 1_512_000)
        assert decision.level_cap == TABLE.max_level - 2

    def test_minimum_frequency_at_or_above_limit(self, linear_predictor):
        usta = self.make_usta(predictor=linear_predictor)
        decision = usta.observe(0.0, readings(cpu=43.0), 0.9, 1_512_000)
        assert decision.level_cap == TABLE.min_level

    def test_prediction_period_is_respected(self, linear_predictor):
        usta = self.make_usta(predictor=linear_predictor, period=3.0)
        usta.observe(0.0, readings(cpu=35.0), 0.5, 1_512_000)
        assert usta.prediction_count == 1
        # Within the same 3-second window: no new prediction, previous cap kept.
        usta.observe(1.0, readings(cpu=50.0), 0.5, 1_512_000)
        assert usta.prediction_count == 1
        # After the window elapses the hot reading is finally acted upon.
        decision = usta.observe(3.0, readings(cpu=50.0), 0.5, 1_512_000)
        assert usta.prediction_count == 2
        assert decision.level_cap == TABLE.min_level

    def test_cap_is_released_when_device_cools(self, linear_predictor):
        usta = self.make_usta(predictor=linear_predictor)
        assert usta.observe(0.0, readings(cpu=43.0), 0.9, 384_000).level_cap == TABLE.min_level
        decision = usta.observe(3.0, readings(cpu=36.0), 0.2, 384_000)
        assert decision.level_cap is None

    def test_reset_clears_state(self, linear_predictor):
        usta = self.make_usta(predictor=linear_predictor)
        usta.observe(0.0, readings(cpu=43.0), 0.9, 1_512_000)
        usta.reset()
        assert usta.prediction_count == 0
        assert usta.current_cap is None
        assert usta.last_prediction_c is None

    def test_latency_statistics_accumulate(self, linear_predictor):
        usta = self.make_usta(predictor=linear_predictor)
        for t in (0.0, 3.0, 6.0):
            usta.observe(t, readings(), 0.5, 1_512_000)
        assert usta.prediction_count == 3
        assert usta.average_prediction_latency_s > 0.0

    def test_for_user_uses_profile_limit(self, linear_predictor):
        profile = paper_population()["f"]  # 34.0 C
        usta = USTAController.for_user(linear_predictor, profile)
        assert usta.skin_limit_c == pytest.approx(34.0)
        assert usta.activation_temp_c == pytest.approx(32.0)

    def test_custom_policy_is_used(self, linear_predictor):
        usta = self.make_usta(predictor=linear_predictor, policy=ThrottlePolicy.aggressive())
        decision = usta.observe(0.0, readings(cpu=39.5), 0.9, 1_512_000)  # margin 2.5 C
        assert decision.level_cap is not None

    def test_invalid_parameters(self, linear_predictor):
        with pytest.raises(ValueError):
            USTAController(predictor=linear_predictor, prediction_period_s=0.0)
        with pytest.raises(ValueError):
            USTAController(predictor=linear_predictor, skin_limit_c=10.0)


class TestUSTAInTheLoop:
    """Closed-loop behaviour on the simulated platform."""

    def heavy_trace(self, duration=1500):
        return WorkloadTrace.constant(
            "stress", duration, WorkloadSample(cpu_demand=0.95, gpu_activity=0.3, brightness=0.9)
        )

    def test_usta_reduces_peak_skin_temperature(self, linear_predictor):
        trace = self.heavy_trace()
        baseline = run_workload(trace, governor="ondemand", seed=2)
        usta = USTAController(predictor=linear_predictor, skin_limit_c=34.0)
        managed = run_workload(trace, governor="ondemand", thermal_manager=usta, seed=2)
        assert baseline.max_skin_temp_c > 34.0
        assert managed.max_skin_temp_c < baseline.max_skin_temp_c - 0.5
        assert managed.average_frequency_ghz < baseline.average_frequency_ghz
        assert managed.usta_active_fraction > 0.0

    def test_usta_does_nothing_for_a_very_tolerant_user(self, linear_predictor):
        trace = self.heavy_trace(600)
        baseline = run_workload(trace, governor="ondemand", seed=2)
        usta = USTAController(predictor=linear_predictor, skin_limit_c=55.0)
        managed = run_workload(trace, governor="ondemand", thermal_manager=usta, seed=2)
        assert managed.max_skin_temp_c == pytest.approx(baseline.max_skin_temp_c, abs=0.2)
        assert managed.usta_active_fraction == 0.0

    def test_governor_label_includes_usta(self, linear_predictor, platform):
        usta = USTAController(predictor=linear_predictor, skin_limit_c=37.0)
        simulator = Simulator(
            platform=platform, governor=OndemandGovernor(table=platform.freq_table), thermal_manager=usta
        )
        result = simulator.run(self.heavy_trace(30))
        assert result.governor_name == "usta+ondemand"

    def test_predictions_recorded_in_step_records(self, linear_predictor, platform):
        usta = USTAController(predictor=linear_predictor, skin_limit_c=37.0)
        simulator = Simulator(
            platform=platform, governor=OndemandGovernor(table=platform.freq_table), thermal_manager=usta
        )
        result = simulator.run(self.heavy_trace(30))
        assert all(r.predicted_skin_temp_c is not None for r in result.records)
