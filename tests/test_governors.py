"""Tests for the cpufreq governor substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.device.freq_table import nexus4_frequency_table
from repro.governors import (
    GOVERNOR_REGISTRY,
    ConservativeGovernor,
    GovernorObservation,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
    create_governor,
)

TABLE = nexus4_frequency_table()


def observe(util, current=0, time_s=0.0):
    return GovernorObservation(utilization=util, current_level=current, time_s=time_s, dt_s=1.0)


class TestRegistry:
    def test_all_expected_governors_registered(self):
        assert set(GOVERNOR_REGISTRY) == {
            "ondemand",
            "conservative",
            "performance",
            "powersave",
            "userspace",
        }

    def test_create_by_name(self):
        governor = create_governor("ondemand", table=TABLE)
        assert isinstance(governor, OndemandGovernor)

    def test_create_unknown_name(self):
        with pytest.raises(KeyError, match="unknown governor"):
            create_governor("turbo")

    def test_create_with_kwargs(self):
        governor = create_governor("ondemand", table=TABLE, up_threshold=0.9)
        assert governor.up_threshold == 0.9


@pytest.mark.parametrize(
    "name", ["ondemand", "conservative", "performance", "powersave", "userspace"]
)
class TestLevelCapEdges:
    """Regression tests for set_level_cap edge semantics, per governor."""

    def _fresh(self, name):
        return create_governor(name, table=TABLE)

    def test_cap_reset_restores_uncapped_selection(self, name):
        governor = self._fresh(name)
        reference = self._fresh(name)
        governor.set_level_cap(2)
        assert governor.is_capped
        governor.set_level_cap(None)
        assert governor.level_cap == TABLE.max_level
        assert not governor.is_capped
        for util in (0.05, 0.5, 0.95):
            obs = observe(util, current=TABLE.max_level)
            assert governor.select_level(obs) == reference.select_level(obs)

    def test_clear_level_cap_equals_none(self, name):
        governor = self._fresh(name)
        governor.set_level_cap(1)
        governor.clear_level_cap()
        assert governor.level_cap == TABLE.max_level
        assert not governor.is_capped

    def test_cap_at_min_level_pins_selection(self, name):
        governor = self._fresh(name)
        governor.set_level_cap(TABLE.min_level)
        assert governor.is_capped
        assert governor.select_level(observe(1.0, current=TABLE.max_level)) == TABLE.min_level

    def test_out_of_range_caps_clamp(self, name):
        governor = self._fresh(name)
        governor.set_level_cap(TABLE.max_level + 50)
        # A cap at/above the top level is equivalent to no cap at all.
        assert governor.level_cap == TABLE.max_level
        assert not governor.is_capped
        governor.set_level_cap(-7)
        assert governor.level_cap == TABLE.min_level
        assert governor.is_capped
        assert governor.select_level(observe(1.0, current=TABLE.max_level)) == TABLE.min_level

    def test_reset_clears_cap(self, name):
        governor = self._fresh(name)
        governor.set_level_cap(3)
        governor.reset()
        assert governor.level_cap == TABLE.max_level
        assert not governor.is_capped

    def test_numpy_integer_caps_accepted(self, name):
        import numpy as np

        governor = self._fresh(name)
        governor.set_level_cap(np.int64(4))
        assert governor.level_cap == 4

    @pytest.mark.parametrize("bad", [2.5, True, "3"], ids=["float", "bool", "str"])
    def test_non_integral_caps_rejected(self, name, bad):
        governor = self._fresh(name)
        with pytest.raises(TypeError, match="integer level or None"):
            governor.set_level_cap(bad)


class TestOndemand:
    def test_high_utilization_jumps_to_max(self, ondemand):
        assert ondemand.select_level(observe(0.95, current=3)) == TABLE.max_level
        assert ondemand.select_level(observe(0.80, current=0)) == TABLE.max_level

    def test_idle_drops_steeply(self, ondemand):
        level = ondemand.select_level(observe(0.05, current=TABLE.max_level))
        assert level <= 2

    def test_moderate_load_steps_down_gradually(self, ondemand):
        # Utilization between the thresholds: one level per window, not a jump.
        level = ondemand.select_level(observe(0.5, current=TABLE.max_level))
        assert level == TABLE.max_level - 1

    def test_moderate_load_never_goes_below_proportional(self, ondemand):
        # At 70% utilization the proportional target is high; stepping down from
        # just above it must stop at the proportional level.
        proportional = TABLE.scale_for_utilization(0.7 / ondemand.up_threshold)
        level = ondemand.select_level(observe(0.7, current=proportional + 1))
        assert level == proportional

    def test_moderate_load_can_raise_to_proportional(self, ondemand):
        proportional = TABLE.scale_for_utilization(0.7 / ondemand.up_threshold)
        level = ondemand.select_level(observe(0.7, current=0))
        assert level == proportional

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            OndemandGovernor(table=TABLE, up_threshold=0.2, down_threshold=0.8)
        with pytest.raises(ValueError):
            OndemandGovernor(table=TABLE, down_step_levels=0)

    @given(util=st.floats(0.0, 1.0), current=st.integers(0, 11))
    def test_selected_level_always_valid(self, util, current):
        governor = OndemandGovernor(table=TABLE)
        level = governor.select_level(observe(util, current=current))
        assert 0 <= level <= TABLE.max_level


class TestLevelCap:
    def test_cap_limits_selection(self, ondemand):
        ondemand.set_level_cap(5)
        assert ondemand.select_level(observe(1.0, current=3)) == 5
        assert ondemand.is_capped

    def test_cap_none_removes_limit(self, ondemand):
        ondemand.set_level_cap(2)
        ondemand.set_level_cap(None)
        assert ondemand.select_level(observe(1.0, current=3)) == TABLE.max_level
        assert not ondemand.is_capped

    def test_clear_level_cap(self, ondemand):
        ondemand.set_level_cap(0)
        ondemand.clear_level_cap()
        assert ondemand.level_cap == TABLE.max_level

    def test_cap_is_clamped_to_table(self, ondemand):
        ondemand.set_level_cap(99)
        assert ondemand.level_cap == TABLE.max_level
        ondemand.set_level_cap(-4)
        assert ondemand.level_cap == 0

    def test_reset_clears_cap(self, ondemand):
        ondemand.set_level_cap(1)
        ondemand.reset()
        assert not ondemand.is_capped

    @given(util=st.floats(0.0, 1.0), cap=st.integers(0, 11), current=st.integers(0, 11))
    def test_selection_never_exceeds_cap(self, util, cap, current):
        governor = OndemandGovernor(table=TABLE)
        governor.set_level_cap(cap)
        assert governor.select_level(observe(util, current=current)) <= cap


class TestStaticGovernors:
    def test_performance_always_max(self):
        governor = PerformanceGovernor(table=TABLE)
        assert governor.select_level(observe(0.0)) == TABLE.max_level

    def test_performance_honours_cap(self):
        governor = PerformanceGovernor(table=TABLE)
        governor.set_level_cap(3)
        assert governor.select_level(observe(1.0)) == 3

    def test_powersave_always_min(self):
        governor = PowersaveGovernor(table=TABLE)
        assert governor.select_level(observe(1.0, current=8)) == 0

    def test_userspace_fixed_level(self):
        governor = UserspaceGovernor(table=TABLE, level=6)
        assert governor.select_level(observe(1.0)) == 6
        governor.set_requested_level(2)
        assert governor.select_level(observe(0.0)) == 2

    def test_userspace_request_by_frequency(self):
        governor = UserspaceGovernor(table=TABLE)
        governor.set_requested_frequency(1_026_000)
        assert governor.requested_level == TABLE.level_of(1_026_000)


class TestConservative:
    def test_steps_up_one_level_under_load(self):
        governor = ConservativeGovernor(table=TABLE)
        assert governor.select_level(observe(0.95, current=4)) == 5

    def test_steps_down_one_level_when_idle(self):
        governor = ConservativeGovernor(table=TABLE)
        assert governor.select_level(observe(0.05, current=4)) == 3

    def test_holds_in_the_middle_band(self):
        governor = ConservativeGovernor(table=TABLE)
        assert governor.select_level(observe(0.5, current=4)) == 4

    def test_does_not_exceed_table_bounds(self):
        governor = ConservativeGovernor(table=TABLE)
        assert governor.select_level(observe(1.0, current=TABLE.max_level)) == TABLE.max_level
        assert governor.select_level(observe(0.0, current=0)) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConservativeGovernor(table=TABLE, up_threshold=0.1, down_threshold=0.5)
        with pytest.raises(ValueError):
            ConservativeGovernor(table=TABLE, step_levels=0)
