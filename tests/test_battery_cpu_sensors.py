"""Tests for the battery, CPU execution model and temperature sensors."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.device.battery import Battery
from repro.device.cpu import Cpu
from repro.device.freq_table import nexus4_frequency_table
from repro.device.sensors import SensorSuite, TemperatureSensor


class TestBattery:
    def test_discharging_reduces_state_of_charge(self):
        battery = Battery(state_of_charge=0.5)
        battery.step(dt_s=3600.0, platform_draw_w=2.0, charging=False)
        assert battery.state_of_charge < 0.5

    def test_charging_increases_state_of_charge(self):
        battery = Battery(state_of_charge=0.5)
        battery.step(dt_s=3600.0, platform_draw_w=0.5, charging=True)
        assert battery.state_of_charge > 0.5

    def test_state_of_charge_stays_in_bounds(self):
        battery = Battery(state_of_charge=0.999)
        for _ in range(100):
            battery.step(dt_s=3600.0, platform_draw_w=0.0, charging=True)
        assert battery.state_of_charge <= 1.0
        battery = Battery(state_of_charge=0.001)
        for _ in range(100):
            battery.step(dt_s=3600.0, platform_draw_w=5.0, charging=False)
        assert battery.state_of_charge >= 0.0

    def test_energy_accounting(self):
        battery = Battery(capacity_wh=8.0, state_of_charge=0.5)
        assert battery.energy_wh == pytest.approx(4.0)

    def test_full_and_empty_flags(self):
        assert Battery(state_of_charge=0.999).is_full
        assert Battery(state_of_charge=0.001).is_empty
        assert not Battery(state_of_charge=0.5).is_full

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Battery(capacity_wh=0.0)
        with pytest.raises(ValueError):
            Battery(state_of_charge=1.5)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            Battery().step(dt_s=-1.0, platform_draw_w=1.0, charging=False)

    @given(
        draw=st.floats(0.0, 6.0),
        charging=st.booleans(),
        steps=st.integers(1, 50),
    )
    def test_soc_always_within_unit_interval(self, draw, charging, steps):
        battery = Battery(state_of_charge=0.5)
        for _ in range(steps):
            battery.step(dt_s=60.0, platform_draw_w=draw, charging=charging)
            assert 0.0 <= battery.state_of_charge <= 1.0


class TestCpu:
    def test_full_speed_serves_all_demand(self):
        cpu = Cpu()
        cpu.set_level(cpu.table.max_level)
        state = cpu.run_window(demand=1.0, dt_s=1.0)
        assert state.delivered_work == pytest.approx(1.0)
        assert state.utilization == pytest.approx(1.0)
        assert state.pending_work == pytest.approx(0.0)

    def test_low_frequency_saturates_on_heavy_demand(self):
        cpu = Cpu()
        cpu.set_level(0)
        state = cpu.run_window(demand=1.0, dt_s=1.0)
        capacity = cpu.table.min_frequency_khz / cpu.table.max_frequency_khz
        assert state.delivered_work == pytest.approx(capacity)
        assert state.saturated
        assert state.pending_work > 0

    def test_backlog_drains_when_frequency_recovers(self):
        cpu = Cpu()
        cpu.set_level(0)
        cpu.run_window(demand=1.0, dt_s=1.0)
        assert cpu.backlog > 0
        cpu.set_level(cpu.table.max_level)
        cpu.run_window(demand=0.0, dt_s=1.0)
        assert cpu.backlog == pytest.approx(0.0)

    def test_backlog_is_capped(self):
        cpu = Cpu(max_backlog=1.5)
        cpu.set_level(0)
        for _ in range(20):
            cpu.run_window(demand=1.0, dt_s=1.0)
        assert cpu.backlog <= 1.5

    def test_no_carry_over_mode(self):
        cpu = Cpu(carry_over=False)
        cpu.set_level(0)
        cpu.run_window(demand=1.0, dt_s=1.0)
        assert cpu.backlog == 0.0

    def test_utilization_reflects_frequency(self):
        cpu = Cpu()
        cpu.set_level(cpu.table.max_level)
        full = cpu.run_window(demand=0.4, dt_s=1.0)
        cpu.reset()
        cpu.set_level(cpu.table.level_of(756_000))
        half = cpu.run_window(demand=0.4, dt_s=1.0)
        assert half.utilization > full.utilization

    def test_set_frequency_snaps_to_table(self):
        cpu = Cpu()
        cpu.set_frequency(1_000_000)
        assert cpu.frequency_khz in cpu.table.frequencies_khz

    def test_reset_restores_level_and_backlog(self):
        cpu = Cpu()
        cpu.set_level(0)
        cpu.run_window(demand=1.0, dt_s=1.0)
        cpu.reset(level=5)
        assert cpu.backlog == 0.0
        assert cpu.level == 5

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            Cpu().run_window(demand=0.5, dt_s=0.0)

    @given(demand=st.floats(0.0, 1.0), level=st.integers(0, 11))
    def test_delivered_never_exceeds_capacity_or_demand(self, demand, level):
        cpu = Cpu(carry_over=False)
        cpu.set_level(level)
        state = cpu.run_window(demand=demand, dt_s=1.0)
        capacity = cpu.frequency_khz / cpu.table.max_frequency_khz
        assert state.delivered_work <= capacity + 1e-12
        assert state.delivered_work <= demand + 1e-12
        assert 0.0 <= state.utilization <= 1.0


class TestTemperatureSensor:
    def test_noiseless_sensor_reports_truth(self):
        sensor = TemperatureSensor("t", "node", noise_std_c=0.0, quantization_c=0.0)
        assert sensor.read(36.6) == pytest.approx(36.6)

    def test_quantization(self):
        sensor = TemperatureSensor("t", "node", noise_std_c=0.0, quantization_c=0.5)
        assert sensor.read(36.6) == pytest.approx(36.5)
        assert sensor.read(36.9) == pytest.approx(37.0)

    def test_offset(self):
        sensor = TemperatureSensor("t", "node", noise_std_c=0.0, quantization_c=0.0, offset_c=1.5)
        assert sensor.read(30.0) == pytest.approx(31.5)

    def test_noise_is_reproducible_per_seed(self):
        a = TemperatureSensor("t", "node", noise_std_c=0.5, quantization_c=0.0, seed=3)
        b = TemperatureSensor("t", "node", noise_std_c=0.5, quantization_c=0.0, seed=3)
        assert [a.read(30.0) for _ in range(5)] == [b.read(30.0) for _ in range(5)]

    def test_noise_statistics(self):
        sensor = TemperatureSensor("t", "node", noise_std_c=0.2, quantization_c=0.0, seed=1)
        readings = np.array([sensor.read(35.0) for _ in range(2000)])
        assert abs(readings.mean() - 35.0) < 0.05
        assert 0.15 < readings.std() < 0.25

    def test_reset_restores_noise_sequence(self):
        sensor = TemperatureSensor("t", "node", noise_std_c=0.3, quantization_c=0.0, seed=9)
        first = [sensor.read(30.0) for _ in range(3)]
        sensor.reset()
        assert [sensor.read(30.0) for _ in range(3)] == first

    def test_last_reading_tracking(self):
        sensor = TemperatureSensor("t", "node", noise_std_c=0.0)
        assert sensor.last_reading is None
        sensor.read(31.0)
        assert sensor.last_reading == pytest.approx(31.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TemperatureSensor("t", "node", noise_std_c=-1.0)
        with pytest.raises(ValueError):
            TemperatureSensor("t", "node", quantization_c=-0.1)


class TestSensorSuite:
    def test_nexus4_suite_has_paper_channels(self):
        suite = SensorSuite.nexus4_instrumented()
        for name in ("cpu", "battery", "skin", "skin_upper", "screen"):
            assert name in suite

    def test_read_all_skips_missing_nodes(self):
        suite = SensorSuite.nexus4_instrumented()
        readings = suite.read_all({"cpu": 50.0, "battery": 35.0})
        assert set(readings) == {"cpu", "battery"}

    def test_read_all_full_network(self):
        suite = SensorSuite.nexus4_instrumented()
        temps = {
            "cpu": 50.0,
            "battery": 36.0,
            "back_cover": 38.0,
            "back_cover_upper": 39.0,
            "screen": 35.0,
        }
        readings = suite.read_all(temps)
        assert set(readings) == {"cpu", "battery", "skin", "skin_upper", "screen"}
        # Readings stay close to the true node temperatures.
        assert abs(readings["skin"] - 38.0) < 1.0
        assert abs(readings["cpu"] - 50.0) < 3.0

    def test_add_custom_sensor(self):
        suite = SensorSuite.nexus4_instrumented()
        suite.add(TemperatureSensor("board_probe", "board", noise_std_c=0.0))
        readings = suite.read_all({"board": 40.0})
        assert readings["board_probe"] == pytest.approx(40.0)

    def test_reset_reseeds_deterministically(self):
        suite = SensorSuite.nexus4_instrumented(seed=5)
        first = suite.read_all({"back_cover": 38.0})
        suite.reset(seed=5)
        assert suite.read_all({"back_cover": 38.0}) == first
