"""Tests for the four regression models (the WEKA substitutes)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    MODEL_REGISTRY,
    Dataset,
    LinearRegression,
    M5ModelTree,
    MultilayerPerceptron,
    RepTree,
    create_model,
    find_best_split,
    mean_absolute_error,
)


def linear_dataset(n=200, noise=0.0, seed=0):
    """y = 2*x0 - 3*x1 + 5 (+ gaussian noise)."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-5, 5, size=(n, 2))
    y = 2.0 * x[:, 0] - 3.0 * x[:, 1] + 5.0 + rng.normal(0, noise, n)
    return Dataset(x, y, ("x0", "x1"), "y")


def piecewise_dataset(n=400, seed=0):
    """A step function that trees capture and a single hyperplane cannot."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 10, size=(n, 2))
    y = np.where(x[:, 0] < 5.0, 10.0, 30.0) + np.where(x[:, 1] < 3.0, 0.0, 5.0)
    return Dataset(x, y, ("x0", "x1"), "y")


class TestRegistry:
    def test_all_paper_models_registered(self):
        assert {"linear_regression", "multilayer_perceptron", "m5p", "reptree"} <= set(MODEL_REGISTRY)

    def test_create_model_by_name(self):
        assert isinstance(create_model("reptree"), RepTree)
        assert isinstance(create_model("m5p"), M5ModelTree)

    def test_create_unknown_model(self):
        with pytest.raises(KeyError, match="unknown model"):
            create_model("xgboost")

    def test_predict_before_fit_raises(self):
        for name in ("linear_regression", "multilayer_perceptron", "m5p", "reptree"):
            with pytest.raises(RuntimeError):
                create_model(name).predict(np.zeros((1, 2)))

    def test_fit_empty_dataset_raises(self):
        empty = Dataset(np.empty((0, 2)), np.empty(0), ("a", "b"), "y")
        with pytest.raises(ValueError):
            LinearRegression().fit(empty)


class TestSplitting:
    def test_finds_the_obvious_split(self):
        x = np.array([[1.0], [2.0], [3.0], [10.0], [11.0], [12.0]])
        y = np.array([0.0, 0.0, 0.0, 10.0, 10.0, 10.0])
        split = find_best_split(x, y, min_leaf=1)
        assert split is not None
        assert split.feature_index == 0
        assert 3.0 < split.threshold < 10.0
        assert split.left_count == 3 and split.right_count == 3

    def test_no_split_on_constant_target(self):
        x = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.full(10, 3.0)
        assert find_best_split(x, y, min_leaf=1) is None

    def test_no_split_when_too_few_samples(self):
        x = np.arange(4, dtype=float).reshape(-1, 1)
        y = np.array([0.0, 1.0, 2.0, 3.0])
        assert find_best_split(x, y, min_leaf=3) is None

    def test_respects_min_leaf(self):
        x = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.array([0.0] * 9 + [100.0])
        split = find_best_split(x, y, min_leaf=3)
        if split is not None:
            assert split.left_count >= 3 and split.right_count >= 3


class TestLinearRegression:
    def test_recovers_exact_coefficients(self):
        model = LinearRegression().fit(linear_dataset(noise=0.0))
        assert model.coefficients == pytest.approx([2.0, -3.0], abs=1e-6)
        assert model.intercept == pytest.approx(5.0, abs=1e-6)

    def test_predictions_on_noisy_data(self):
        data = linear_dataset(noise=0.5, seed=1)
        model = LinearRegression().fit(data)
        mae = mean_absolute_error(data.target, model.predict(data.features))
        assert mae < 1.0

    def test_predict_one(self):
        model = LinearRegression().fit(linear_dataset())
        assert model.predict_one(np.array([1.0, 1.0])) == pytest.approx(4.0, abs=1e-6)

    def test_ridge_shrinks_coefficients(self):
        data = linear_dataset(noise=0.1)
        plain = LinearRegression(ridge=0.0).fit(data)
        heavy = LinearRegression(ridge=1e4).fit(data)
        assert np.linalg.norm(heavy.coefficients) < np.linalg.norm(plain.coefficients)

    def test_negative_ridge_rejected(self):
        with pytest.raises(ValueError):
            LinearRegression(ridge=-1.0)

    def test_describe_mentions_features(self):
        model = LinearRegression().fit(linear_dataset())
        text = model.describe()
        assert "x0" in text and "x1" in text

    def test_collinear_features_do_not_crash(self):
        rng = np.random.default_rng(0)
        x0 = rng.uniform(0, 1, 50)
        x = np.column_stack([x0, 2 * x0])
        y = 3 * x0 + 1
        model = LinearRegression().fit(Dataset(x, y, ("a", "b"), "y"))
        assert mean_absolute_error(y, model.predict(x)) < 0.1


class TestRepTree:
    def test_learns_piecewise_structure(self):
        data = piecewise_dataset()
        model = RepTree(min_leaf=5).fit(data)
        mae = mean_absolute_error(data.target, model.predict(data.features))
        assert mae < 1.0

    def test_outperforms_linear_on_piecewise_data(self):
        data = piecewise_dataset()
        tree_mae = mean_absolute_error(
            data.target, RepTree(min_leaf=5).fit(data).predict(data.features)
        )
        linear_mae = mean_absolute_error(
            data.target, LinearRegression().fit(data).predict(data.features)
        )
        assert tree_mae < linear_mae

    def test_constant_target_gives_single_leaf(self):
        x = np.arange(20, dtype=float).reshape(-1, 1)
        data = Dataset(x, np.full(20, 7.0), ("x",), "y")
        model = RepTree().fit(data)
        assert model.num_leaves == 1
        assert model.depth == 0
        assert model.predict(np.array([[100.0]]))[0] == pytest.approx(7.0)

    def test_max_depth_limits_tree(self):
        data = piecewise_dataset()
        shallow = RepTree(min_leaf=2, max_depth=1, prune=False).fit(data)
        assert shallow.depth <= 1
        assert shallow.num_leaves <= 2

    def test_pruning_never_increases_leaf_count(self):
        data = piecewise_dataset(seed=3)
        unpruned = RepTree(min_leaf=2, prune=False, seed=1).fit(data)
        pruned = RepTree(min_leaf=2, prune=True, seed=1).fit(data)
        assert pruned.num_leaves <= unpruned.num_leaves

    def test_describe_renders_tree(self):
        model = RepTree(min_leaf=5).fit(piecewise_dataset())
        assert "x0" in model.describe()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RepTree(min_leaf=0)
        with pytest.raises(ValueError):
            RepTree(max_depth=0)
        with pytest.raises(ValueError):
            RepTree(prune_fraction=1.0)

    def test_introspection_requires_fit(self):
        with pytest.raises(RuntimeError):
            _ = RepTree().depth
        with pytest.raises(RuntimeError):
            _ = RepTree().num_leaves

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_predictions_within_training_target_range(self, seed):
        data = piecewise_dataset(seed=seed)
        model = RepTree(min_leaf=5, seed=seed).fit(data)
        predictions = model.predict(data.features)
        assert predictions.min() >= data.target.min() - 1e-9
        assert predictions.max() <= data.target.max() + 1e-9


class TestM5ModelTree:
    def test_exact_on_linear_data(self):
        # A model tree with linear leaves should nail a globally linear target.
        data = linear_dataset(noise=0.0)
        model = M5ModelTree().fit(data)
        mae = mean_absolute_error(data.target, model.predict(data.features))
        assert mae < 0.2

    def test_learns_piecewise_structure(self):
        data = piecewise_dataset()
        model = M5ModelTree(min_leaf=8).fit(data)
        mae = mean_absolute_error(data.target, model.predict(data.features))
        assert mae < 1.5

    def test_smoothing_can_be_disabled(self):
        data = piecewise_dataset()
        smooth = M5ModelTree(smoothing=True).fit(data)
        raw = M5ModelTree(smoothing=False).fit(data)
        # Both are accurate; the predictions differ because of path smoothing.
        assert mean_absolute_error(data.target, smooth.predict(data.features)) < 2.0
        assert mean_absolute_error(data.target, raw.predict(data.features)) < 2.0

    def test_depth_and_leaves_reported(self):
        model = M5ModelTree(min_leaf=8).fit(piecewise_dataset())
        assert model.num_leaves >= 1
        assert model.depth >= 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            M5ModelTree(min_leaf=1)
        with pytest.raises(ValueError):
            M5ModelTree(max_depth=0)
        with pytest.raises(ValueError):
            M5ModelTree(smoothing_constant=0.0)

    def test_constant_target(self):
        x = np.arange(30, dtype=float).reshape(-1, 1)
        data = Dataset(x, np.full(30, 2.5), ("x",), "y")
        model = M5ModelTree().fit(data)
        assert model.predict(np.array([[15.0]]))[0] == pytest.approx(2.5, abs=1e-6)


class TestMultilayerPerceptron:
    def test_learns_linear_relationship(self):
        data = linear_dataset(n=300, noise=0.0)
        model = MultilayerPerceptron(hidden_sizes=(16,), epochs=200, learning_rate=0.02, seed=0)
        model.fit(data)
        mae = mean_absolute_error(data.target, model.predict(data.features))
        assert mae < 1.5

    def test_reproducible_for_fixed_seed(self):
        data = linear_dataset(n=100)
        a = MultilayerPerceptron(epochs=50, seed=3).fit(data).predict(data.features)
        b = MultilayerPerceptron(epochs=50, seed=3).fit(data).predict(data.features)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        data = linear_dataset(n=100)
        a = MultilayerPerceptron(epochs=20, seed=1).fit(data).predict(data.features)
        b = MultilayerPerceptron(epochs=20, seed=2).fit(data).predict(data.features)
        assert not np.allclose(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MultilayerPerceptron(hidden_sizes=())
        with pytest.raises(ValueError):
            MultilayerPerceptron(hidden_sizes=(0,))
        with pytest.raises(ValueError):
            MultilayerPerceptron(epochs=0)
        with pytest.raises(ValueError):
            MultilayerPerceptron(learning_rate=0.0)
        with pytest.raises(ValueError):
            MultilayerPerceptron(momentum=1.0)

    def test_constant_features_do_not_crash(self):
        x = np.ones((50, 2))
        y = np.full(50, 4.0)
        data = Dataset(x, y, ("a", "b"), "y")
        model = MultilayerPerceptron(epochs=20, seed=0).fit(data)
        assert model.predict(x)[0] == pytest.approx(4.0, abs=0.5)
