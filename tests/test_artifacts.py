"""Tests for the content-addressed predictor artifact cache.

The contract: a ``trained`` predictor recipe resolves by content key (spec
hash + training-data hash) to a disk artifact, so repeated builds — in this
process, in a later process, or in process-pool workers — load the trained
model instead of re-collecting data and retraining, and the loaded model is
bit-identical to a freshly trained one.
"""

import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.api.specs import PredictorSpec
from repro.core.predictor import predictor_cache_stats, reset_predictor_caches
from repro.runtime.artifacts import (
    ARTIFACT_ENV_VAR,
    ArtifactCache,
    configured_artifact_cache,
    predictor_content_key,
    training_data_sha,
)

#: A deliberately tiny recipe: one short skype run, linear regression.
RECIPE = {
    "model": "linear_regression",
    "seed": 11,
    "duration_scale": 0.02,
    "benchmarks": ["skype"],
}


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """Point the process (and its future pool workers) at a fresh cache."""
    directory = tmp_path / "artifacts"
    monkeypatch.setenv(ARTIFACT_ENV_VAR, str(directory))
    reset_predictor_caches()
    yield directory
    reset_predictor_caches()


def _hammer_worker(payload):
    """Hammer one cache key with repeated concurrent store+resolve cycles.

    Regression probe for the fleet-worker write race: every ``store`` must be
    all-or-nothing (unique temp name + atomic rename), so a concurrent
    ``resolve`` may see *either* complete artifact but never a torn one.
    Returns the number of failed resolves (must be zero).
    """
    cache = ArtifactCache(payload["directory"])
    predictor = payload["predictor"]
    failures = 0
    for round_number in range(payload["rounds"]):
        data_sha = f"w{payload['worker']}r{round_number}".ljust(20, "0")
        cache.store(payload["key"], data_sha, predictor)
        if cache.resolve(payload["key"]) is None:
            failures += 1
    return failures


def _probe_worker(recipe):
    """Pool-worker probe: build the recipe, report this process's cache traffic.

    Resets the process-local memo and counters first — under a ``fork`` start
    method the worker inherits the parent's, which would mask the disk path
    this probe exists to exercise.
    """
    reset_predictor_caches()
    PredictorSpec(kind="trained", params=recipe).build()
    return predictor_cache_stats()


class TestContentKeys:
    def test_key_is_stable_and_order_independent(self):
        a = predictor_content_key("trained", {"model": "reptree", "seed": 1})
        b = predictor_content_key("trained", {"seed": 1, "model": "reptree"})
        assert a == b

    def test_key_distinguishes_recipes(self):
        base = predictor_content_key("trained", RECIPE)
        changed = dict(RECIPE, seed=12)
        assert predictor_content_key("trained", changed) != base
        assert predictor_content_key("other", RECIPE) != base

    def test_training_data_sha_tracks_content(self, small_training_data):
        sha = training_data_sha(small_training_data)
        assert sha == training_data_sha(small_training_data)
        assert len(sha) == 20


class TestArtifactCache:
    def test_store_resolve_round_trip(self, tmp_path, linear_predictor):
        cache = ArtifactCache(tmp_path)
        key = predictor_content_key("trained", RECIPE)
        assert cache.resolve(key) is None
        path = cache.store(key, "d" * 20, linear_predictor)
        assert path.exists()
        assert path.name.endswith("-dddddddddddddddddddd.pkl")
        loaded = cache.resolve(key)
        assert loaded is not None
        features = np.array([[45.0, 42.0, 0.5, 1_512_000.0]])
        assert loaded.skin_model.predict(features) == linear_predictor.skin_model.predict(
            features
        )
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_damaged_artifact_is_a_miss(self, tmp_path, linear_predictor):
        cache = ArtifactCache(tmp_path)
        key = predictor_content_key("trained", RECIPE)
        path = cache.store(key, "d" * 20, linear_predictor)
        path.write_bytes(b"\x80not a pickle")
        assert cache.resolve(key) is None

    def test_env_var_off_disables(self, monkeypatch):
        for value in ("off", "", "none", "0"):
            monkeypatch.setenv(ARTIFACT_ENV_VAR, value)
            assert configured_artifact_cache() is None

    def test_env_var_selects_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ARTIFACT_ENV_VAR, str(tmp_path / "c"))
        cache = configured_artifact_cache()
        assert cache is not None
        assert cache.directory == tmp_path / "c"


class TestConcurrentStoreHammer:
    def test_parallel_writers_never_tear_the_cache(self, tmp_path, linear_predictor):
        """Four processes hammer the same content key; no resolve ever fails,
        and no orphaned temp file survives."""
        workers = 4
        payloads = [
            {
                "directory": str(tmp_path),
                "key": predictor_content_key("trained", RECIPE),
                "predictor": linear_predictor,
                "worker": worker,
                "rounds": 15,
            }
            for worker in range(workers)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            failures = list(pool.map(_hammer_worker, payloads, chunksize=1))
        assert failures == [0] * workers

        cache = ArtifactCache(tmp_path)
        assert cache.resolve(predictor_content_key("trained", RECIPE)) is not None
        # Atomic writes leave no droppings: every temp file was renamed or
        # cleaned up, and the index points at an artifact that exists.
        assert list(tmp_path.glob(".*.tmp")) == []
        index = json.loads(
            (tmp_path / f"{predictor_content_key('trained', RECIPE)}.json").read_text()
        )
        assert (tmp_path / index["file"]).exists()

    def test_stale_tmp_sweep_removes_only_old_orphans(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        old = tmp_path / ".dead-worker.pkl.deadbeef.tmp"
        old.write_bytes(b"partial")
        os.utime(old, (1, 1))  # ancient
        fresh = tmp_path / ".live-writer.pkl.cafef00d.tmp"
        fresh.write_bytes(b"in flight")
        assert cache.sweep_stale_tmp(max_age_s=3600.0) == 1
        assert not old.exists()
        assert fresh.exists()


class TestTrainedRecipeIntegration:
    def test_disk_cache_answers_second_process_lifetime(self, cache_dir):
        """Clearing the in-memory memo (≈ a new process) hits the disk artifact."""
        first = PredictorSpec(kind="trained", params=RECIPE).build()
        stats = predictor_cache_stats()
        assert stats["trained"] == 1 and stats["stored"] == 1

        reset_predictor_caches()  # forget the in-memory memo, keep the disk
        second = PredictorSpec(kind="trained", params=RECIPE).build()
        stats = predictor_cache_stats()
        assert stats["trained"] == 0
        assert stats["disk_hits"] == 1

        features = np.array([[45.0, 42.0, 0.5, 1_512_000.0], [30.0, 29.0, 0.1, 384_000.0]])
        assert np.array_equal(
            first.skin_model.predict(features), second.skin_model.predict(features)
        )

    def test_memory_memo_still_first(self, cache_dir):
        PredictorSpec(kind="trained", params=RECIPE).build()
        PredictorSpec(kind="trained", params=RECIPE).build()
        stats = predictor_cache_stats()
        assert stats["memory_hits"] == 1
        assert stats["trained"] == 1

    def test_two_worker_processes_hit_cache_without_retraining(self, cache_dir):
        """The acceptance criterion: ≥1 cache hit across two processes, no retrain."""
        # Warm the disk cache once in the parent ...
        PredictorSpec(kind="trained", params=RECIPE).build()
        assert predictor_cache_stats()["stored"] == 1
        artifacts_before = {p.name: p.stat().st_mtime for p in cache_dir.glob("*.pkl")}

        # ... then let two fresh worker processes build the same recipe.
        with ProcessPoolExecutor(max_workers=2) as pool:
            worker_stats = list(pool.map(_probe_worker, [RECIPE, RECIPE], chunksize=1))
        for stats in worker_stats:
            assert stats["trained"] == 0, "a worker retrained despite the artifact cache"
            assert stats["disk_hits"] >= 1
        # Nobody rewrote the artifact.
        artifacts_after = {p.name: p.stat().st_mtime for p in cache_dir.glob("*.pkl")}
        assert artifacts_after == artifacts_before

    def test_artifact_payload_names_spec_and_data(self, cache_dir, small_training_data):
        PredictorSpec(kind="trained", params=RECIPE).build()
        [artifact] = list(cache_dir.glob("*.pkl"))
        spec_sha, data_sha = artifact.stem.split("-")
        assert spec_sha == predictor_content_key(
            "trained",
            {
                "model": RECIPE["model"],
                "seed": RECIPE["seed"],
                "duration_scale": RECIPE["duration_scale"],
                "benchmarks": RECIPE["benchmarks"],
                "include_screen": True,
                "log_period_s": 3.0,
            },
        )
        payload = pickle.loads(artifact.read_bytes())
        assert payload["data_sha"] == data_sha
        assert payload["predictor"].skin_model.is_fitted
