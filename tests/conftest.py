"""Shared fixtures for the test suite.

Expensive artefacts (training data, trained predictors, reproduction contexts)
are built once per session at reduced workload durations so the full suite
stays fast while still exercising the real pipeline.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.analysis.context import ReproductionContext
from repro.core.pipeline import collect_training_data, train_runtime_predictor
from repro.core.predictor import RuntimePredictor
from repro.device.freq_table import nexus4_frequency_table
from repro.device.platform import DevicePlatform
from repro.governors.ondemand import OndemandGovernor
from repro.ml.dataset import Dataset
from repro.ml.linear import LinearRegression
from repro.sim.logger import FEATURE_NAMES
from repro.workloads.benchmarks import build_benchmark

# Hypothesis profiles: "dev" keeps the suite quick on laptops; "ci" runs more
# examples with a derandomized (fixed-seed) search so CI failures reproduce.
# Select with HYPOTHESIS_PROFILE=ci (the workflow does).  Tests that pin their
# own @settings (e.g. the slow closed-loop properties) override the profile.
settings.register_profile(
    "dev",
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=60,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def freq_table():
    """The Nexus 4 frequency table."""
    return nexus4_frequency_table()


@pytest.fixture()
def platform():
    """A fresh simulated handset with deterministic sensor noise."""
    return DevicePlatform(seed=7)


@pytest.fixture()
def ondemand(freq_table):
    """A fresh ondemand governor."""
    return OndemandGovernor(table=freq_table)


def _linear_training_dataset(target_offset: float) -> Dataset:
    """A synthetic dataset where the exterior temperature tracks the CPU temperature.

    The generated relationship is ``target = cpu_temp - target_offset`` with
    small contributions from the other features, spanning 25-60 °C so that a
    model trained on it extrapolates sensibly in controller tests.
    """
    rng = np.random.default_rng(42)
    n = 400
    cpu_temp = rng.uniform(25.0, 60.0, n)
    battery_temp = cpu_temp - rng.uniform(1.0, 4.0, n)
    utilization = rng.uniform(0.0, 1.0, n)
    frequency = rng.choice(nexus4_frequency_table().frequencies_khz, n).astype(float)
    target = cpu_temp - target_offset + 0.02 * utilization
    features = np.column_stack([cpu_temp, battery_temp, utilization, frequency])
    return Dataset(
        features=features,
        target=target,
        feature_names=FEATURE_NAMES,
        target_name="skin_temp_c",
    )


@pytest.fixture(scope="session")
def linear_predictor() -> RuntimePredictor:
    """A predictor whose skin prediction is (CPU temperature - 5 °C).

    Because it is linear it extrapolates over any temperature range, which
    makes USTA controller tests independent of the thermal calibration.
    """
    skin = LinearRegression().fit(_linear_training_dataset(5.0))
    screen = LinearRegression().fit(_linear_training_dataset(7.0))
    return RuntimePredictor(skin_model=skin, screen_model=screen)


@pytest.fixture(scope="session")
def small_training_data():
    """A small pooled training set built from three shortened benchmarks."""
    return collect_training_data(
        benchmarks=("skype", "antutu_tester", "youtube"),
        seed=3,
        duration_scale=0.1,
    )


@pytest.fixture(scope="session")
def small_predictor(small_training_data) -> RuntimePredictor:
    """A REPTree predictor trained on the small pooled training set."""
    return train_runtime_predictor(small_training_data, model_name="reptree", seed=3)


@pytest.fixture(scope="session")
def small_context(linear_predictor, small_training_data) -> ReproductionContext:
    """A reproduction context that is cheap to evaluate in analysis tests.

    It reuses the small training data but deploys the linear predictor, whose
    extrapolation keeps USTA responsive even on shortened workloads.
    """
    from repro.users.population import paper_population

    return ReproductionContext(
        predictor=linear_predictor,
        training_data=small_training_data,
        population=paper_population(),
        seed=3,
        duration_scale=0.1,
    )


@pytest.fixture(scope="session")
def skype_trace_short():
    """A five-minute Skype trace for integration tests."""
    return build_benchmark("skype", seed=1, duration_s=300)
