"""Tests for the system logger and the simulation result container."""

import numpy as np
import pytest

from repro.sim.logger import FEATURE_NAMES, SCREEN_TARGET, SKIN_TARGET, SystemLogger
from repro.sim.results import SimulationResult, StepRecord


def make_record(time_s, skin=35.0, screen=33.0, freq=1_134_000, util=0.5, demand=0.5,
                delivered=0.5, power=3.0, usta_active=False, cap=11):
    return StepRecord(
        time_s=time_s,
        frequency_khz=freq,
        frequency_level=7,
        level_cap=cap,
        utilization=util,
        demand=demand,
        delivered_work=delivered,
        power_w=power,
        cpu_temp_c=skin + 6.0,
        battery_temp_c=skin - 1.0,
        skin_temp_c=skin,
        screen_temp_c=screen,
        sensor_cpu_temp_c=skin + 6.0,
        sensor_battery_temp_c=skin - 1.0,
        sensor_skin_temp_c=skin,
        sensor_screen_temp_c=screen,
        usta_active=usta_active,
    )


def make_result(skins, usta_active=False):
    result = SimulationResult(workload_name="w", governor_name="ondemand", dt_s=1.0)
    for i, skin in enumerate(skins):
        result.append(make_record(float(i + 1), skin=skin, usta_active=usta_active))
    return result


class TestSystemLogger:
    def readings(self, skin=35.0):
        return {"cpu": skin + 6.0, "battery": skin - 1.0, "skin": skin, "screen": skin - 2.0}

    def test_logs_first_sample_immediately(self):
        logger = SystemLogger(period_s=3.0)
        record = logger.maybe_log(1.0, "skype", self.readings(), 0.5, 1_134_000)
        assert record is not None
        assert len(logger) == 1

    def test_respects_logging_period(self):
        logger = SystemLogger(period_s=3.0)
        logger.maybe_log(1.0, "skype", self.readings(), 0.5, 1_000_000)
        assert logger.maybe_log(2.0, "skype", self.readings(), 0.5, 1_000_000) is None
        assert logger.maybe_log(4.0, "skype", self.readings(), 0.5, 1_000_000) is not None
        assert len(logger) == 2

    def test_record_fields(self):
        logger = SystemLogger()
        record = logger.maybe_log(0.0, "youtube", self.readings(34.0), 0.25, 384_000)
        assert record.benchmark == "youtube"
        assert record.cpu_temp_c == pytest.approx(40.0)
        assert record.skin_temp_c == pytest.approx(34.0)
        assert record.frequency_khz == 384_000.0
        assert set(record.as_dict()) >= {"cpu_temp_c", "battery_temp_c", "utilization", "frequency_khz"}

    def test_reset_clears_records_and_clock(self):
        logger = SystemLogger(period_s=3.0)
        logger.maybe_log(0.0, "a", self.readings(), 0.5, 1_000_000)
        logger.reset()
        assert len(logger) == 0
        assert logger.maybe_log(0.5, "a", self.readings(), 0.5, 1_000_000) is not None

    def test_to_dataset_skin_and_screen(self):
        logger = SystemLogger(period_s=1.0)
        for t in range(5):
            logger.maybe_log(float(t), "a", self.readings(34.0 + t), 0.5, 1_000_000)
        skin = logger.to_dataset(SKIN_TARGET)
        screen = logger.to_dataset(SCREEN_TARGET)
        assert skin.feature_names == FEATURE_NAMES
        assert len(skin) == 5
        assert np.allclose(skin.target, [34.0, 35.0, 36.0, 37.0, 38.0])
        assert np.allclose(screen.target, skin.target - 2.0)

    def test_to_dataset_requires_records_and_valid_target(self):
        logger = SystemLogger()
        with pytest.raises(ValueError):
            logger.to_dataset()
        logger.maybe_log(0.0, "a", self.readings(), 0.5, 1_000_000)
        with pytest.raises(ValueError):
            logger.to_dataset("cpu_temp_c")

    def test_extend_pools_records(self):
        a, b = SystemLogger(), SystemLogger()
        a.maybe_log(0.0, "a", self.readings(), 0.5, 1_000_000)
        b.maybe_log(0.0, "b", self.readings(), 0.5, 1_000_000)
        a.extend(b)
        assert len(a) == 2

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            SystemLogger(period_s=0.0)


class TestSimulationResult:
    def test_summary_metrics(self):
        result = make_result([34.0, 36.0, 38.0, 37.0])
        assert result.max_skin_temp_c == 38.0
        assert result.max_screen_temp_c == 33.0
        assert result.duration_s == 4.0
        assert result.average_frequency_ghz == pytest.approx(1.134)
        assert result.average_power_w == pytest.approx(3.0)
        assert result.total_energy_j == pytest.approx(12.0)

    def test_throughput_ratio(self):
        result = make_result([34.0] * 4)
        assert result.throughput_ratio == pytest.approx(1.0)
        starved = SimulationResult("w", "g", 1.0)
        starved.append(make_record(1.0, demand=1.0, delivered=0.25))
        assert starved.throughput_ratio == pytest.approx(0.25)

    def test_throughput_ratio_with_zero_demand(self):
        idle = SimulationResult("w", "g", 1.0)
        idle.append(make_record(1.0, demand=0.0, delivered=0.0))
        assert idle.throughput_ratio == 1.0

    def test_usta_active_fraction(self):
        result = SimulationResult("w", "g", 1.0)
        result.append(make_record(1.0, usta_active=True))
        result.append(make_record(2.0, usta_active=False))
        assert result.usta_active_fraction == pytest.approx(0.5)

    def test_comfort_analysis_integration(self):
        result = make_result([34.0, 38.0, 39.0, 36.0])
        analysis = result.comfort_against(37.0, user_id="default")
        assert analysis.time_over_limit_s == 2.0
        assert result.percent_time_over(37.0) == pytest.approx(50.0)

    def test_time_series_accessors(self):
        result = make_result([34.0, 35.0])
        assert result.times_s().tolist() == [1.0, 2.0]
        assert result.skin_temps_c().tolist() == [34.0, 35.0]
        assert len(result.frequencies_khz()) == 2
        assert len(result.utilizations()) == 2
        assert len(result.cpu_temps_c()) == 2
        assert len(result.battery_temps_c()) == 2

    def test_empty_result_edge_cases(self):
        empty = SimulationResult("w", "g", 1.0)
        assert len(empty) == 0
        assert np.isnan(empty.max_skin_temp_c)
        assert empty.usta_active_fraction == 0.0
        assert empty.total_energy_j == 0.0

    def test_summary_and_records_export(self):
        result = make_result([34.0, 35.0])
        summary = result.summary()
        assert set(summary) >= {"max_skin_temp_c", "max_screen_temp_c", "average_frequency_ghz"}
        records = result.to_records()
        assert len(records) == 2
        assert records[0]["skin_temp_c"] == 34.0
