"""Tests for the DVFS operating-point table."""

import pytest
from hypothesis import given, strategies as st

from repro.device.freq_table import (
    NEXUS4_FREQUENCIES_KHZ,
    NEXUS4_VOLTAGES_MV,
    FrequencyTable,
    nexus4_frequency_table,
)


class TestNexus4Table:
    def test_has_twelve_levels(self):
        table = nexus4_frequency_table()
        assert len(table) == 12

    def test_range_matches_paper(self):
        table = nexus4_frequency_table()
        assert table.min_frequency_khz == 384_000
        assert table.max_frequency_khz == 1_512_000

    def test_frequencies_ascending_and_unique(self):
        freqs = nexus4_frequency_table().frequencies_khz
        assert list(freqs) == sorted(freqs)
        assert len(set(freqs)) == len(freqs)

    def test_voltages_monotonically_non_decreasing(self):
        table = nexus4_frequency_table()
        voltages = [table.voltage_at(level) for level in range(len(table))]
        assert voltages == sorted(voltages)

    def test_operating_point_properties(self):
        opp = nexus4_frequency_table()[11]
        assert opp.frequency_ghz == pytest.approx(1.512)
        assert opp.frequency_hz == pytest.approx(1.512e9)
        assert opp.voltage_v == pytest.approx(1.25)
        assert opp.index == 11


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            FrequencyTable([100_000, 200_000], [900])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError, match="at least two"):
            FrequencyTable([100_000], [900])

    def test_rejects_unsorted_frequencies(self):
        with pytest.raises(ValueError, match="ascending"):
            FrequencyTable([200_000, 100_000], [900, 950])

    def test_rejects_duplicate_frequencies(self):
        with pytest.raises(ValueError, match="unique"):
            FrequencyTable([100_000, 100_000], [900, 950])

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ValueError, match="positive"):
            FrequencyTable([0, 100_000], [900, 950])

    def test_rejects_non_positive_voltage(self):
        with pytest.raises(ValueError, match="positive"):
            FrequencyTable([100_000, 200_000], [0, 950])


class TestLookups:
    def test_level_of_exact_frequency(self, freq_table):
        for point in freq_table:
            assert freq_table.level_of(point.frequency_khz) == point.index

    def test_level_of_clamps_below(self, freq_table):
        assert freq_table.level_of(1) == 0

    def test_level_of_clamps_above(self, freq_table):
        assert freq_table.level_of(10_000_000) == freq_table.max_level

    def test_level_of_picks_nearest(self, freq_table):
        # 500 MHz is closer to 486 MHz (level 1) than to 594 MHz (level 2).
        assert freq_table.level_of(500_000) == 1
        # 560 MHz is closer to 594 MHz.
        assert freq_table.level_of(560_000) == 2

    def test_floor_and_ceil_levels(self, freq_table):
        assert freq_table.floor_level(600_000) == 2   # 594 MHz
        assert freq_table.ceil_level(600_000) == 3    # 702 MHz
        assert freq_table.floor_level(100_000) == 0
        assert freq_table.ceil_level(2_000_000) == freq_table.max_level

    def test_clamp_level(self, freq_table):
        assert freq_table.clamp_level(-5) == 0
        assert freq_table.clamp_level(100) == freq_table.max_level
        assert freq_table.clamp_level(6) == 6

    def test_frequency_and_voltage_at_clamped_levels(self, freq_table):
        assert freq_table.frequency_at(-1) == freq_table.min_frequency_khz
        assert freq_table.frequency_at(99) == freq_table.max_frequency_khz
        assert freq_table.voltage_at(0) == pytest.approx(0.95)


class TestScaleForUtilization:
    def test_zero_utilization_gives_min_level(self, freq_table):
        assert freq_table.scale_for_utilization(0.0) == 0

    def test_full_utilization_gives_max_level(self, freq_table):
        assert freq_table.scale_for_utilization(1.0) == freq_table.max_level

    def test_half_utilization_is_sufficient(self, freq_table):
        level = freq_table.scale_for_utilization(0.5)
        assert freq_table.frequency_at(level) >= 0.5 * freq_table.max_frequency_khz

    def test_out_of_range_utilization_is_clamped(self, freq_table):
        assert freq_table.scale_for_utilization(-1.0) == 0
        assert freq_table.scale_for_utilization(2.0) == freq_table.max_level

    @given(util=st.floats(min_value=0.0, max_value=1.0))
    def test_selected_level_always_serves_the_load(self, util):
        table = nexus4_frequency_table()
        level = table.scale_for_utilization(util)
        assert table.frequency_at(level) >= util * table.max_frequency_khz - 1e-6

    @given(util_a=st.floats(0.0, 1.0), util_b=st.floats(0.0, 1.0))
    def test_scaling_is_monotonic_in_utilization(self, util_a, util_b):
        table = nexus4_frequency_table()
        if util_a <= util_b:
            assert table.scale_for_utilization(util_a) <= table.scale_for_utilization(util_b)


class TestContainerProtocol:
    def test_iteration_yields_all_points_in_order(self, freq_table):
        points = list(freq_table)
        assert [p.index for p in points] == list(range(12))
        assert [p.frequency_khz for p in points] == list(NEXUS4_FREQUENCIES_KHZ)
        assert [p.voltage_mv for p in points] == list(NEXUS4_VOLTAGES_MV)

    def test_getitem(self, freq_table):
        assert freq_table[0].frequency_khz == 384_000
        assert freq_table[11].frequency_khz == 1_512_000
