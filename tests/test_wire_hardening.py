"""Hardening of the telemetry wire path: the four bugs fixed alongside HAL ingestion.

Each class is a regression suite for one named bug:

1. non-finite readings crossing the wire silently (``TelemetrySample`` /
   ``PredictionFeatures.from_readings``);
2. the decision log opened in append mode, duplicating history on re-runs;
3. session cap/feed counters lost across warm-start snapshot/restore;
4. ``per_user_capped_fraction`` averaging per-session fractions with equal
   weight instead of weighting by feeds.
"""

import json
import math

import pytest

from repro.api.serve import per_user_capped_fractions, run_serve
from repro.api.session import SessionPool, open_session
from repro.api.specs import ManagerSpec, PolicySpec
from repro.api.types import TelemetrySample
from repro.core.predictor import PredictionFeatures
from repro.fleet.state import restore_session_state, snapshot_session_state

USTA = PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": 38.0}))


def _sample(time_s, cpu_temp_c, utilization=0.5, frequency_khz=1_512_000.0):
    return TelemetrySample(
        time_s=time_s,
        utilization=utilization,
        frequency_khz=frequency_khz,
        sensor_readings={"cpu": cpu_temp_c, "battery": cpu_temp_c - 2.5},
    )


class TestNonFiniteRejection:
    """Satellite 1: NaN/Inf must die loudly at the wire, naming the channel."""

    def test_sample_rejects_nan_sensor_reading_naming_channel(self):
        with pytest.raises(ValueError) as err:
            TelemetrySample(
                time_s=1.0,
                utilization=0.5,
                frequency_khz=1_512_000.0,
                sensor_readings={"cpu": 40.0, "skin": float("nan")},
            )
        assert "skin" in str(err.value)

    def test_sample_rejects_infinite_scalar_fields(self):
        for field, kwargs in (
            ("time_s", {"time_s": float("inf")}),
            ("utilization", {"utilization": float("nan")}),
            ("frequency_khz", {"frequency_khz": float("-inf")}),
        ):
            values = {"time_s": 0.0, "utilization": 0.5, "frequency_khz": 1e6}
            values.update(kwargs)
            with pytest.raises(ValueError) as err:
                TelemetrySample(sensor_readings={"cpu": 40.0, "battery": 35.0}, **values)
            assert field in str(err.value)

    def test_finite_sample_still_constructs(self):
        sample = _sample(0.0, 40.0)
        assert sample.sensor_readings["cpu"] == 40.0

    def test_from_readings_names_missing_channel(self):
        with pytest.raises(ValueError) as err:
            PredictionFeatures.from_readings({"cpu": 40.0}, 0.5, 1e6)
        message = str(err.value)
        assert "battery" in message and "cpu" in message  # missing + present

    def test_from_readings_rejects_non_finite_feature(self):
        with pytest.raises(ValueError) as err:
            PredictionFeatures.from_readings(
                {"cpu": 40.0, "battery": float("nan")}, 0.5, 1e6
            )
        assert "battery" in str(err.value)
        with pytest.raises(ValueError) as err:
            PredictionFeatures.from_readings(
                {"cpu": 40.0, "battery": 35.0}, float("inf"), 1e6
            )
        assert "utilization" in str(err.value)


class TestDecisionLogTruncation:
    """Satellite 2: a fresh run must truncate the log, not append to history."""

    TELEMETRY = [
        TelemetrySample(
            time_s=float(t),
            utilization=0.5,
            frequency_khz=1_512_000.0,
            sensor_readings={"cpu": 40.0 + t, "battery": 37.0 + t},
        )
        for t in range(4)
    ]

    def _serve(self, small_context, log_path):
        return run_serve(
            small_context,
            sessions=3,
            telemetry=self.TELEMETRY,
            decision_log=log_path,
        )

    def test_rerun_truncates_instead_of_appending(self, small_context, tmp_path):
        log_path = tmp_path / "decisions.jsonl"
        self._serve(small_context, log_path)
        first = log_path.read_text().splitlines()
        self._serve(small_context, log_path)
        second = log_path.read_text().splitlines()
        assert len(first) == len(self.TELEMETRY)
        # The append-mode bug doubled this: history from run 1 stayed put and
        # run 2's lines landed after it, with time_s restarting midway.
        assert second == first
        times = [json.loads(line)["time_s"] for line in second]
        assert times == sorted(times) and len(set(times)) == len(times)


class TestCounterWarmStart:
    """Satellite 3: cap/feed counters must survive snapshot/restore."""

    def _fed_session(self, linear_predictor, n_hot=3, n_cool=2):
        session = open_session(USTA, predictor=linear_predictor)
        t = 0.0
        for _ in range(n_cool):
            session.feed(_sample(t, 30.0))  # predicted skin 25 °C: no cap
            t += 1.0
        for _ in range(n_hot):
            session.feed(_sample(t, 60.0))  # predicted skin 55 °C: caps
            t += 1.0
        return session

    def test_snapshot_carries_counters(self, linear_predictor):
        session = self._fed_session(linear_predictor)
        snapshot = snapshot_session_state(session)
        assert snapshot["feeds"] == 5
        assert snapshot["caps"] == session.cap_count
        assert snapshot["caps"] > 0

    def test_restore_resumes_capped_fraction(self, linear_predictor):
        donor = self._fed_session(linear_predictor)
        snapshot = snapshot_session_state(donor)
        fresh = open_session(USTA, predictor=linear_predictor)
        assert fresh.feed_count == 0
        assert restore_session_state(fresh, snapshot)
        assert fresh.feed_count == donor.feed_count
        assert fresh.cap_count == donor.cap_count

    def test_restore_tolerates_counterless_legacy_snapshots(self, linear_predictor):
        session = open_session(USTA, predictor=linear_predictor)
        assert restore_session_state(session, {"limit_c": 36.5})
        assert session.feed_count == 0 and session.cap_count == 0

    def test_restore_counters_validates_invariants(self, linear_predictor):
        session = open_session(USTA, predictor=linear_predictor)
        with pytest.raises(ValueError):
            session.restore_counters(feed_count=2, cap_count=3)  # caps > feeds
        with pytest.raises(ValueError):
            session.restore_counters(feed_count=-1, cap_count=0)


class TestFeedWeightedCappedFraction:
    """Satellite 4: per-user capped fraction weights by feeds, not sessions."""

    def test_unequal_session_feeds_weigh_proportionally(self, linear_predictor):
        pool = SessionPool()
        long_session = pool.open("long", USTA, predictor=linear_predictor)
        short_session = pool.open("short", USTA, predictor=linear_predictor)
        # 'long': 8 feeds, 0 caps.  'short': 2 feeds, 2 caps.
        for t in range(8):
            long_session.feed(_sample(float(t), 30.0))
        for t in range(2):
            short_session.feed(_sample(float(t), 60.0))
        fractions = per_user_capped_fractions(
            pool, {"long": "user-a", "short": "user-a"}
        )
        # 2 caps over 10 feeds.  The old equal-weight average reported
        # (0/8 + 2/2) / 2 = 0.5 — off by 2.5x for this user.
        assert fractions["user-a"] == pytest.approx(0.2)

    def test_feedless_user_reports_zero(self, linear_predictor):
        pool = SessionPool()
        pool.open("idle", USTA, predictor=linear_predictor)
        fractions = per_user_capped_fractions(pool, {"idle": "user-b"})
        assert fractions["user-b"] == 0.0

    def test_run_serve_report_uses_weighted_fractions(self, small_context):
        telemetry = [
            TelemetrySample(
                time_s=float(t),
                utilization=0.5,
                frequency_khz=1_512_000.0,
                sensor_readings={"cpu": 55.0, "battery": 50.0},
            )
            for t in range(3)
        ]
        report = run_serve(small_context, sessions=12, telemetry=telemetry)
        for fraction in report.per_user_capped_fraction.values():
            assert 0.0 <= fraction <= 1.0
            assert math.isfinite(fraction)
