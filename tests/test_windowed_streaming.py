"""Tests for windowed streaming execution of the vectorized engine.

The contract under test: the engine can replay traces in fixed-size step
windows through one reused set of staging buffers — sized explicitly
(``window_steps``) or from a byte budget (``max_window_bytes``) — and the
results stay *bit-identical* to the unwindowed engine and the serial
executor, for bare, managed (policy-plane) and mixed-length populations.
With a ``window_drain`` the record buffer is drained at every window
boundary, so the live footprint stops scaling with trace length; the
executor's spool-and-replay streaming path must then produce shards
byte-identical to the unwindowed :class:`StreamingResultStore` output.
"""

import json

import numpy as np
import pytest

from repro.device.platform import DevicePlatform
from repro.governors import OndemandGovernor
from repro.core.usta import USTAController
from repro.runtime import (
    BatchRunner,
    ExperimentCell,
    ExperimentPlan,
    PopulationMember,
    SerialExecutor,
    StreamingResultStore,
    VectorizedExecutor,
    simulate_population_mixed,
)
from repro.runtime import executors as executors_module
from repro.runtime import vectorized as vectorized_module
from repro.runtime.vectorized import (
    DEFAULT_MAX_WINDOW_BYTES,
    describe_window_plan,
    resolve_window_steps,
    window_bytes_per_step,
)
from repro.sim.engine import Simulator
from repro.sim.results import ColumnarRecordBuffer
from repro.users.adaptation import (
    AdaptiveComfortManager,
    QuantileTracker,
    UserFeedbackModel,
)
from repro.workloads.benchmarks import build_benchmark
from repro.workloads.trace import WorkloadSample, WorkloadTrace


def _toggle_trace(steps: int = 77) -> WorkloadTrace:
    samples = [
        WorkloadSample(
            cpu_demand=0.9 if i % 3 else 0.2,
            touching=(i // 10) % 2 == 0,
            charging=(i // 15) % 2 == 1,
        )
        for i in range(steps)
    ]
    return WorkloadTrace.from_samples("toggles", samples)


def _mixed_traces():
    shared = build_benchmark("skype", seed=0, duration_s=90.0)
    # The same trace object twice: window staging must dedup it exactly like
    # the full stack does.
    return [
        shared,
        build_benchmark("youtube", seed=1, duration_s=60.0),
        _toggle_trace(70),
        shared,
    ]


def _bare_members(n):
    members = []
    for seed in range(n):
        platform = DevicePlatform(seed=seed)
        members.append(
            PopulationMember(
                platform=platform,
                governor=OndemandGovernor(table=platform.freq_table),
            )
        )
    return members


def _managed_members(linear_predictor, n):
    members = []
    for seed in range(n):
        platform = DevicePlatform(seed=seed)
        manager = AdaptiveComfortManager(
            inner=USTAController(
                predictor=linear_predictor,
                skin_limit_c=37.0,
                prediction_period_s=1.0,
            ),
            adapter=QuantileTracker(initial_limit_c=37.0),
            feedback=UserFeedbackModel(
                true_limit_c=35.5, report_period_s=10.0, seed=seed
            ),
        )
        members.append(
            PopulationMember(
                platform=platform,
                governor=OndemandGovernor(table=platform.freq_table),
                thermal_manager=manager,
            )
        )
    return members


class TestTraceWindows:
    def test_windows_concatenate_to_full_arrays(self):
        trace = _toggle_trace(77)
        full = trace.as_arrays()
        for window in (2, 8, 33, 77, 100):
            chunks = list(trace.iter_windows(window))
            assert [w0 for w0, _ in chunks] == list(range(0, 77, window))
            for name in (
                "cpu_demand",
                "gpu_activity",
                "radio_activity",
                "brightness",
                "screen_on",
                "charging",
                "touching",
            ):
                joined = np.concatenate([getattr(a, name) for _, a in chunks])
                assert np.array_equal(joined, getattr(full, name))

    def test_window_views_are_bit_identical_slices(self):
        trace = _toggle_trace(40)
        fresh = trace.arrays_window(5, 25)  # no cache yet: built from samples
        full = trace.as_arrays()
        cached = trace.arrays_window(5, 25)  # answered as views into the cache
        assert np.array_equal(fresh.cpu_demand, full.cpu_demand[5:25])
        assert cached.cpu_demand.base is not None  # zero-copy view
        assert np.array_equal(cached.cpu_demand, fresh.cpu_demand)

    def test_rejects_bad_ranges(self):
        trace = _toggle_trace(10)
        with pytest.raises(ValueError, match="invalid trace window"):
            trace.arrays_window(-1, 5)
        with pytest.raises(ValueError, match="invalid trace window"):
            trace.arrays_window(6, 5)
        with pytest.raises(ValueError, match="window_steps"):
            list(trace.iter_windows(0))


class TestWindowResolution:
    def test_explicit_steps_win_and_clamp(self):
        assert resolve_window_steps(4, 100, window_steps=8) == 8
        assert resolve_window_steps(4, 100, window_steps=500) == 100
        # Explicit steps ignore the budget entirely.
        assert resolve_window_steps(4, 100, window_steps=8, max_window_bytes=1) == 8

    def test_budget_sizing(self):
        per_step = window_bytes_per_step(4)
        assert resolve_window_steps(4, 100, max_window_bytes=per_step * 10) == 10
        # A budget below two steps still yields the floor of 2.
        assert resolve_window_steps(4, 100, max_window_bytes=1) == 2
        # A roomy budget disables windowing.
        assert resolve_window_steps(4, 100, max_window_bytes=per_step * 1000) == 100
        # No parameters at all: unwindowed.
        assert resolve_window_steps(4, 100) == 100

    def test_default_budget_keeps_paper_scale_unwindowed(self):
        # 10 users x one paper benchmark is far below 64 MiB of staging.
        steps = resolve_window_steps(
            10, 3600, max_window_bytes=DEFAULT_MAX_WINDOW_BYTES, n_noisy_sensors=5
        )
        assert steps == 3600

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            resolve_window_steps(4, 100, window_steps=1)
        with pytest.raises(ValueError, match="must be positive"):
            resolve_window_steps(4, 100, max_window_bytes=0)

    def test_engine_surfaces_bad_window_args(self):
        # Plain ValueError, not VectorizationError: bad arguments must not
        # trigger the silent scalar fallback.
        traces = [_toggle_trace(10)]
        with pytest.raises(ValueError, match="at least 2"):
            simulate_population_mixed(traces, _bare_members(1), window_steps=1)
        with pytest.raises(ValueError, match="must be positive"):
            simulate_population_mixed(traces, _bare_members(1), max_window_bytes=-5)

    def test_describe_window_plan(self):
        off = describe_window_plan(4, 100)
        assert off.startswith("windowing: off")
        explicit = describe_window_plan(4, 100, window_steps=8)
        assert "13 windows x 8 steps" in explicit
        assert "window_steps=8" in explicit
        # describe_window_plan sizes against the default instrumented sensor
        # suite (5 noisy sensors).
        per_step = window_bytes_per_step(4, n_noisy_sensors=5, with_decisions=True)
        budget = describe_window_plan(4, 100, max_window_bytes=per_step * 10)
        assert "10 windows x 10 steps" in budget
        assert "budget" in budget


class TestWindowedEngineParity:
    @pytest.mark.parametrize("window", [2, 8, 33, 70])
    def test_bare_population_bit_identical(self, window):
        traces = _mixed_traces()
        expected = simulate_population_mixed(traces, _bare_members(len(traces)))
        windowed_members = _bare_members(len(traces))
        got = simulate_population_mixed(
            traces, windowed_members, window_steps=window
        )
        for want, have in zip(expected, got):
            assert have.records == want.records
        # Cross-window platform state must land exactly where the unwindowed
        # run leaves it (temperatures, hand contact, battery, clock).
        reference = _bare_members(len(traces))
        simulate_population_mixed(traces, reference)
        for ref, win in zip(reference, windowed_members):
            assert ref.platform.temperatures() == win.platform.temperatures()
            assert ref.platform.hand.touching == win.platform.hand.touching
            assert ref.platform.time_s == win.platform.time_s
            assert (
                ref.platform.battery.state_of_charge
                == win.platform.battery.state_of_charge
            )

    @pytest.mark.parametrize("window", [2, 33, 90])
    def test_managed_population_bit_identical(self, window, linear_predictor):
        traces = _mixed_traces()
        expected = simulate_population_mixed(
            traces, _managed_members(linear_predictor, len(traces))
        )
        got = simulate_population_mixed(
            traces,
            _managed_members(linear_predictor, len(traces)),
            window_steps=window,
        )
        for want, have in zip(expected, got):
            assert have.records == want.records

    def test_budget_windowing_matches_serial(self):
        traces = _mixed_traces()
        budget = window_bytes_per_step(len(traces), n_noisy_sensors=5) * 16
        got = simulate_population_mixed(
            traces, _bare_members(len(traces)), max_window_bytes=budget
        )
        for seed, (trace, have) in enumerate(zip(traces, got)):
            platform = DevicePlatform(seed=seed)
            reference = Simulator(
                platform=platform, governor=OndemandGovernor(table=platform.freq_table)
            ).run(trace)
            assert have.records == reference.records


class _CollectingDrain:
    def __init__(self):
        self.records = {}
        self.done = {}

    def emit_member_window(self, index, records, done):
        self.records.setdefault(index, []).extend(records)
        self.done.setdefault(index, []).append(done)


class TestWindowDrain:
    def test_drained_records_match_unwindowed(self):
        traces = _mixed_traces()
        expected = simulate_population_mixed(traces, _bare_members(len(traces)))
        drain = _CollectingDrain()
        got = simulate_population_mixed(
            traces, _bare_members(len(traces)), window_steps=8, window_drain=drain
        )
        for index, want in enumerate(expected):
            assert drain.records[index] == want.records
            # done fires exactly once per member, on its last window.
            assert drain.done[index].count(True) == 1
            assert drain.done[index][-1] is True
            # Drained results carry no records — that is the point.
            assert got[index].records == []

    def test_drain_window_is_iter_records_under_the_pinned_order(self):
        # drain_window must go through the same positionally-pinned column
        # order as iter_records; a column reorder would corrupt both, and
        # _check_field_order guards the order at import time.
        buf = ColumnarRecordBuffer(2, 5, with_decisions=False)
        buf.frequency_khz[:3, 1] = [100, 200, 300]
        buf.skin_temp_c[:3, 1] = [30.0, 31.0, 32.0]
        times = [0.0, 1.0, 2.0]
        drained = list(buf.drain_window(1, times, 3))
        rebuilt = list(buf.iter_records(1, times, 3))
        assert drained == rebuilt
        assert [r.frequency_khz for r in drained] == [100, 200, 300]
        assert [r.skin_temp_c for r in drained] == [30.0, 31.0, 32.0]
        assert [r.time_s for r in drained] == times


class TestWindowedStreamingShards:
    def _plan(self, linear_predictor):
        from repro.api.specs import ManagerSpec, PolicySpec

        plan = ExperimentPlan()
        plan.add(
            ExperimentCell(
                cell_id="skype/usta",
                benchmark="skype",
                duration_s=90.0,
                policy=PolicySpec(
                    manager=ManagerSpec("usta", params={"skin_limit_c": 37.0})
                ),
                predictor=linear_predictor,
                seed=0,
            )
        )
        plan.add(
            ExperimentCell(
                cell_id="toggles/bare",
                trace=_toggle_trace(70),
                seed=1,
            )
        )
        plan.add(
            ExperimentCell(
                cell_id="youtube/bare",
                benchmark="youtube",
                duration_s=60.0,
                seed=2,
            )
        )
        return plan

    @staticmethod
    def _cell_lines(directory):
        lines = {}
        for path in sorted(directory.glob("shard-*.jsonl")):
            for line in path.read_text(encoding="utf-8").splitlines():
                payload = json.loads(line)
                lines[payload["cell"]["cell_id"]] = line[
                    : line.rindex(',"wall_time_s":')
                ]
        return lines

    def test_windowed_shards_byte_identical_to_unwindowed(
        self, tmp_path, linear_predictor, monkeypatch
    ):
        plan = self._plan(linear_predictor)

        plain_store = StreamingResultStore(tmp_path / "plain", max_cells_per_shard=2)
        BatchRunner(executor=VectorizedExecutor()).run_stream(plan, plain_store)
        plain_store.close()

        spools = []
        original = executors_module._WindowSpoolDrain.__init__

        def counting(self, n_members):
            spools.append(n_members)
            original(self, n_members)

        monkeypatch.setattr(executors_module._WindowSpoolDrain, "__init__", counting)
        windowed_store = StreamingResultStore(
            tmp_path / "windowed", max_cells_per_shard=2
        )
        BatchRunner(executor=VectorizedExecutor(window_steps=8)).run_stream(
            plan, windowed_store
        )
        windowed_store.close()
        assert spools == [len(plan)]  # the spool path actually ran

        plain = self._cell_lines(tmp_path / "plain")
        windowed = self._cell_lines(tmp_path / "windowed")
        assert plain.keys() == windowed.keys() == {c.cell_id for c in plan}
        for cell_id, line in plain.items():
            assert windowed[cell_id] == line

    def test_unwindowed_executor_skips_the_spool(self, tmp_path, monkeypatch):
        plan = ExperimentPlan()
        plan.add(ExperimentCell(cell_id="a", trace=_toggle_trace(20), seed=0))
        plan.add(ExperimentCell(cell_id="b", trace=_toggle_trace(20), seed=1))

        def boom(self, n_members):  # pragma: no cover - guard
            raise AssertionError("spool must not be built for unwindowed plans")

        monkeypatch.setattr(executors_module._WindowSpoolDrain, "__init__", boom)
        store = StreamingResultStore(tmp_path / "out")
        BatchRunner(executor=VectorizedExecutor()).run_stream(plan, store)
        store.close()
        assert len(store.completed_cell_ids) == 2


class TestTraceStackCacheBytes:
    def _clear(self):
        vectorized_module._TRACE_STACK_CACHE.clear()

    def test_oversized_stack_is_not_cached(self, monkeypatch):
        self._clear()
        monkeypatch.setenv("REPRO_TRACE_STACK_CACHE_BYTES", "64")
        traces = [_toggle_trace(50)]
        vectorized_module._stack_trace_arrays(traces, 50)
        assert len(vectorized_module._TRACE_STACK_CACHE) == 0

    def test_byte_lru_eviction(self, monkeypatch):
        self._clear()
        one = [_toggle_trace(40)]
        size = sum(
            column.nbytes
            for column in vectorized_module._stack_trace_arrays(one, 40).values()
        )
        self._clear()
        # Budget fits two stacks of this size but not three.
        monkeypatch.setenv("REPRO_TRACE_STACK_CACHE_BYTES", str(size * 2))
        a, b, c = [_toggle_trace(40)], [_toggle_trace(40)], [_toggle_trace(40)]
        vectorized_module._stack_trace_arrays(a, 40)
        vectorized_module._stack_trace_arrays(b, 40)
        assert len(vectorized_module._TRACE_STACK_CACHE) == 2
        vectorized_module._stack_trace_arrays(c, 40)
        assert len(vectorized_module._TRACE_STACK_CACHE) == 2
        remaining = [key for key in vectorized_module._TRACE_STACK_CACHE]
        # Oldest (a) evicted; b and c remain.
        assert all(id(a[0]) not in key[1] for key in remaining)
        self._clear()

    def test_cache_hits_survive_the_byte_bound(self, monkeypatch):
        self._clear()
        monkeypatch.setenv("REPRO_TRACE_STACK_CACHE_BYTES", str(1 << 20))
        traces = [_toggle_trace(40)]
        first = vectorized_module._stack_trace_arrays(traces, 40)
        second = vectorized_module._stack_trace_arrays(traces, 40)
        assert first is second  # same cached dict, not a rebuild
        self._clear()


class TestMemberCapWindowComposition:
    def test_split_batches_each_window_independently(self):
        # max_batch_members and the window cap compose: the member cap splits
        # the group, then every split batch windows its own longest trace.
        trace = _toggle_trace(30)
        cells = [ExperimentCell(cell_id=f"c{i}", trace=trace, seed=i) for i in range(5)]
        executor = VectorizedExecutor(max_batch_members=4, window_steps=8)
        batch_plan = executor.batch_plan(cells)
        assert [len(batch) for batch in batch_plan.batches] == [3, 2]

        description = batch_plan.describe(
            cells,
            window_steps=executor.window_steps,
            max_window_bytes=executor.max_window_bytes,
        )
        assert description.count("split by max_batch_members") == 2
        assert description.count("windowing: 4 windows x 8 steps") == 2

        results = executor.execute(cells)
        for seed, entry in enumerate(results):
            platform = DevicePlatform(seed=seed)
            reference = Simulator(
                platform=platform, governor=OndemandGovernor(table=platform.freq_table)
            ).run(trace)
            assert entry.result.records == reference.records

    def test_streaming_with_both_caps_matches_serial(self, tmp_path):
        trace = _toggle_trace(30)
        cells = [ExperimentCell(cell_id=f"c{i}", trace=trace, seed=i) for i in range(5)]
        plan = ExperimentPlan(cells)

        serial_store = StreamingResultStore(tmp_path / "serial", max_cells_per_shard=2)
        BatchRunner(executor=SerialExecutor()).run_stream(plan, serial_store)
        serial_store.close()

        capped_store = StreamingResultStore(tmp_path / "capped", max_cells_per_shard=2)
        BatchRunner(
            executor=VectorizedExecutor(max_batch_members=4, window_steps=8)
        ).run_stream(plan, capped_store)
        capped_store.close()

        serial = TestWindowedStreamingShards._cell_lines(tmp_path / "serial")
        capped = TestWindowedStreamingShards._cell_lines(tmp_path / "capped")
        assert serial.keys() == capped.keys()
        for cell_id, line in serial.items():
            assert capped[cell_id] == line


class TestCliWindowFlags:
    def test_parser_accepts_window_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep", "--window-steps", "64"])
        assert args.window_steps == 64
        args = build_parser().parse_args(["sweep", "--window-bytes", "1048576"])
        assert args.window_bytes == 1048576
        assert build_parser().parse_args(["sweep"]).window_steps is None

    @pytest.mark.parametrize(
        "argv, message",
        [
            (["sweep", "--window-steps", "1"], "at least 2"),
            (["sweep", "--window-bytes", "0"], "must be positive"),
            (["sweep", "--window-bytes", "-4"], "must be positive"),
            (["fig1", "--window-steps", "8"], "--window-steps only applies to 'sweep'"),
            (["golden", "--window-bytes", "8"], "--window-bytes only applies to 'sweep'"),
            (
                ["sweep", "--window-steps", "8", "--window-bytes", "8"],
                "different window sizings",
            ),
            (["sweep", "--window-steps", "8", "--jobs", "4"], "drop --jobs"),
            (
                ["sweep", "--window-steps", "8", "--fleet", "2", "--stream-to", "out"],
                "not --fleet shards",
            ),
        ],
    )
    def test_window_flag_validation(self, argv, message):
        from repro.cli import main

        with pytest.raises(SystemExit, match=message):
            main(argv)

    def test_for_jobs_threads_window_settings(self):
        runner = BatchRunner.for_jobs(None, window_steps=16)
        assert isinstance(runner.executor, VectorizedExecutor)
        assert runner.executor.window_steps == 16
        runner = BatchRunner.for_jobs(1, window_bytes=4096)
        assert runner.executor.max_window_bytes == 4096
        # Defaults untouched when no flags are passed.
        runner = BatchRunner.for_jobs(None)
        assert runner.executor.window_steps is None
        assert runner.executor.max_window_bytes == DEFAULT_MAX_WINDOW_BYTES
