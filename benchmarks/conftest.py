"""Shared fixtures for the paper-reproduction benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the reproduced rows next to the paper's reported values.  The shared
:class:`~repro.analysis.context.ReproductionContext` (benchmark data
collection + predictor training) is built once per session.

The workload-duration scale can be reduced for a quick pass::

    REPRO_BENCH_SCALE=0.25 pytest benchmarks/ --benchmark-only

The default scale of 1.0 replays the paper's full benchmark durations.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.context import ReproductionContext


def _bench_scale() -> float:
    try:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        scale = 1.0
    return max(0.01, min(scale, 1.0))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Workload-duration scale used throughout the harness."""
    return _bench_scale()


@pytest.fixture(scope="session")
def context(bench_scale) -> ReproductionContext:
    """The shared reproduction context (training data + deployed predictor)."""
    return ReproductionContext.build(seed=0, duration_scale=bench_scale)


#: The reproduced tables/figures are also appended here, so the rows survive
#: pytest's output capturing even when the harness is run without ``-s``.
REPORT_PATH = os.path.join(os.path.dirname(__file__), "last_report.txt")


@pytest.fixture(scope="session", autouse=True)
def _fresh_report(bench_scale):
    """Start a fresh report file for every harness session."""
    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        handle.write(f"USTA reproduction benchmark report (duration scale {bench_scale})\n")
    yield


def print_section(title: str, body: str) -> None:
    """Print one reproduced table/figure and append it to the report file."""
    bar = "=" * max(20, len(title))
    text = f"\n{bar}\n{title}\n{bar}\n{body}\n"
    print(text, end="")
    with open(REPORT_PATH, "a", encoding="utf-8") as handle:
        handle.write(text)
