"""Micro-benchmarks of the simulation substrate itself.

Not a paper figure: these measure the cost of the building blocks (thermal
step, platform step, full one-minute simulation, REPTree training) so
regressions in the substrate's performance are visible over time.
"""

import numpy as np

from repro.core.pipeline import train_runtime_predictor
from repro.device.platform import DeviceActivity, DevicePlatform
from repro.governors import OndemandGovernor
from repro.sim.engine import Simulator
from repro.thermal import ThermalSolver, build_nexus4_network
from repro.workloads import WorkloadSample, WorkloadTrace


def bench_thermal_step(benchmark):
    """One implicit-Euler step of the Nexus 4 thermal network."""
    network = build_nexus4_network()
    solver = ThermalSolver(network)
    power = {"cpu": 2.5, "screen": 0.5, "board": 0.6, "battery": 0.2}
    benchmark(lambda: solver.step(1.0, power))


def bench_platform_step(benchmark):
    """One full device step (CPU + power + thermal + sensors)."""
    platform = DevicePlatform(seed=0)
    activity = DeviceActivity(cpu_demand=0.8, gpu_activity=0.3, radio_activity=0.5)
    benchmark(lambda: platform.step(activity))


def bench_one_minute_simulation(benchmark):
    """Sixty simulated seconds of a heavy workload under ondemand."""
    trace = WorkloadTrace.constant("minute", 60.0, WorkloadSample(cpu_demand=0.9))

    def run():
        platform = DevicePlatform(seed=0)
        simulator = Simulator(platform=platform, governor=OndemandGovernor(table=platform.freq_table))
        return simulator.run(trace)

    result = benchmark(run)
    assert len(result) == 60


def bench_reptree_training(benchmark, context):
    """Training the deployed REPTree on the pooled global dataset."""

    def train():
        return train_runtime_predictor(context.training_data, model_name="reptree", seed=0)

    predictor = benchmark.pedantic(train, rounds=1, iterations=1)
    assert predictor.skin_model.is_fitted


def bench_predictor_batch_prediction(benchmark, context):
    """Batch prediction over the whole training set (throughput check)."""
    data = context.training_data.skin_dataset()

    def predict():
        return context.predictor.skin_model.predict(data.features)

    predictions = benchmark(predict)
    assert len(predictions) == len(data)
    assert float(np.mean(np.abs(predictions - data.target))) < 1.0
