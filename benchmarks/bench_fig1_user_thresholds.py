"""Figure 1 — per-user skin/screen comfort thresholds.

Reproduces the comfort-threshold study: the ten participants hold the phone
while the AnTuTu Tester stress workload runs under the baseline governor, and
each reports the moment the skin temperature crosses their personal limit.
"""

from conftest import print_section

from repro.analysis import PAPER_USER_STUDY_RANGE_C, figure1_user_thresholds, render_figure1


def bench_fig1_user_thresholds(benchmark, context, bench_scale):
    """Regenerate Figure 1 (comfort limits and discomfort onset times)."""
    duration_s = 45 * 60 * bench_scale

    def run():
        return figure1_user_thresholds(context, duration_s=duration_s)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section("Figure 1 — individual comfort limits (skin / screen)", render_figure1(rows))

    # The population spans the paper's reported range with a 37 C average.
    limits = [row.skin_limit_c for row in rows]
    assert min(limits) == PAPER_USER_STUDY_RANGE_C[0]
    assert max(limits) == PAPER_USER_STUDY_RANGE_C[1]
    assert abs(sum(limits) / len(limits) - 37.0) < 0.1

    # The stress workload makes at least the less tolerant half of the users
    # uncomfortable, and more tolerant users take longer to get there.
    onsets = {row.user_id: row.onset_time_s for row in rows}
    uncomfortable = [uid for uid, onset in onsets.items() if onset is not None]
    assert len(uncomfortable) >= 5
    if onsets.get("f") is not None and onsets.get("a") is not None:
        assert onsets["f"] <= onsets["a"]
