"""Benchmarks of the streaming results pipeline.

Not a paper figure: these measure what the streaming record path buys — the
*peak memory* of a sweep (the batch path accumulates every cell's full
``StepRecord`` list; the streamed path holds ~one cell) and the throughput
cost of writing sharded JSONL while executing, so regressions in either are
visible over time.

Peak memory is measured with :mod:`tracemalloc` (allocation peak, which is
what accumulating record lists dominates), so the numbers are comparable
across machines without ``psutil``.

Run under pytest-benchmark as part of the harness, or directly::

    python benchmarks/bench_streaming_store.py

which re-measures everything and rewrites
``benchmarks/BENCH_streaming_store.json`` — the committed baseline that gives
future PRs a memory/throughput trajectory.
"""

import json
import os
import shutil
import sys
import tempfile
import time
import tracemalloc

if __name__ == "__main__":  # allow running as a script without PYTHONPATH
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime import (
    BatchRunner,
    ExperimentCell,
    ExperimentPlan,
    SerialExecutor,
    StreamingResultStore,
)
from repro.workloads.benchmarks import build_benchmark

N_CELLS = 24
TRACE_SECONDS = 600.0


def _plan():
    trace = build_benchmark("skype", seed=0, duration_s=TRACE_SECONDS)
    return ExperimentPlan(
        [ExperimentCell(cell_id=f"cell{i:02d}", trace=trace, seed=i) for i in range(N_CELLS)]
    ), trace


def _run_batch(plan):
    return BatchRunner(executor=SerialExecutor()).run(plan)


def _run_streamed(plan, directory):
    store = StreamingResultStore(directory)
    BatchRunner(executor=SerialExecutor()).run_stream(plan, store)
    store.close()


def _measure(fn):
    """(wall_seconds, tracemalloc_peak_bytes) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_sweep_batch_in_memory(benchmark):
    """24 cells accumulated in memory (the pre-streaming path)."""
    plan, _ = _plan()
    store = benchmark.pedantic(lambda: _run_batch(plan), rounds=2, iterations=1)
    assert len(store) == N_CELLS


def bench_sweep_streamed_to_shards(benchmark):
    """The same 24 cells streamed into a sharded JSONL store."""
    plan, _ = _plan()

    def run():
        directory = tempfile.mkdtemp(prefix="bench-stream-")
        try:
            _run_streamed(plan, directory)
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    benchmark.pedantic(run, rounds=2, iterations=1)


# ---------------------------------------------------------------------------
# baseline writer (python benchmarks/bench_streaming_store.py)
# ---------------------------------------------------------------------------

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_streaming_store.json"
)


def write_baseline(path=BASELINE_PATH):
    """Measure the batch vs streamed sweep and write the JSON baseline."""
    plan, trace = _plan()
    member_steps = len(trace) * N_CELLS

    batch_s, batch_peak = _measure(lambda: _run_batch(plan))

    directory = tempfile.mkdtemp(prefix="bench-stream-")
    try:
        stream_s, stream_peak = _measure(lambda: _run_streamed(plan, directory))
        shard_bytes = sum(
            os.path.getsize(os.path.join(directory, name))
            for name in os.listdir(directory)
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    baseline = {
        "config": {
            "cells": N_CELLS,
            "trace": "skype",
            "trace_steps": len(trace),
        },
        "batch_in_memory": {
            "seconds": batch_s,
            "peak_mb": batch_peak / 1e6,
            "member_steps_per_s": member_steps / batch_s,
        },
        "streamed_to_shards": {
            "seconds": stream_s,
            "peak_mb": stream_peak / 1e6,
            "member_steps_per_s": member_steps / stream_s,
            "shard_mb_written": shard_bytes / 1e6,
        },
        "peak_memory_ratio": batch_peak / stream_peak,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    return baseline


if __name__ == "__main__":
    report = write_baseline()
    print(json.dumps(report, indent=2))
    ratio = report["peak_memory_ratio"]
    print(f"\nstreaming cuts sweep peak memory {ratio:.1f}x", file=sys.stderr)
