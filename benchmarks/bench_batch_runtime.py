"""Benchmarks of the batched experiment runtime.

Not a paper figure: these measure the performance tiers the runtime
introduces —

1. prefactored implicit thermal stepping (vs the seed's rebuild-and-solve),
2. a single ``Simulator.run`` on the prefactored substrate,
3. a 16-user same-trace population through the vectorized engine (vs 16
   sequential ``Simulator.run`` calls),
4. a heterogeneous 24-cell *mixed-trace* sweep (six distinct benchmarks ×
   four seeds) three ways: sequential, the old same-trace-only grouping, and
   the structure-of-arrays batch that integrates all 24 cells at once,
5. the same 24-cell sweep *managed*: every member wraps a USTA controller
   (skin + screen predictions every second) in an adaptive comfort manager
   with a quantile-tracker adapter and a simulated-user feedback model —
   measured with the vectorized policy plane against the per-member-manager
   baseline (``vectorize_managers=False``) and full sequential runs,
6. a synthetic multi-hour trace through the *windowed* engine with an
   incremental record drain, against the unwindowed engine holding every
   record at once — peak memory (tracemalloc) must collapse while
   throughput stays level,

so regressions in the batching machinery are visible over time.

Run under pytest-benchmark as part of the harness, or directly::

    python benchmarks/bench_batch_runtime.py            # rewrite the baseline
    python benchmarks/bench_batch_runtime.py --smoke    # CI gate: SoA > serial

The first form re-measures everything and rewrites
``benchmarks/BENCH_batch_runtime.json`` — the committed baseline that gives
future PRs a perf trajectory.  ``--smoke`` runs a scaled-down mixed-trace
sweep and exits non-zero unless the SoA batch beats sequential execution by a
generous margin (so CI catches a silent fallback to the scalar path without
being flaky about machine speed).
"""

import json
import os
import sys
import time

if __name__ == "__main__":  # allow running as a script without PYTHONPATH
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core.predictor import RuntimePredictor
from repro.core.usta import USTAController
from repro.device.freq_table import nexus4_frequency_table
from repro.device.platform import DevicePlatform
from repro.governors import OndemandGovernor
from repro.ml.dataset import Dataset
from repro.ml.linear import LinearRegression
from repro.runtime import (
    PopulationMember,
    simulate_population,
    simulate_population_mixed,
)
from repro.sim.engine import Simulator
from repro.sim.logger import FEATURE_NAMES
from repro.thermal import ThermalSolver, build_nexus4_network
from repro.users.adaptation import (
    AdaptiveComfortManager,
    QuantileTracker,
    UserFeedbackModel,
)
from repro.workloads.benchmarks import build_benchmark

POWER = {"cpu": 2.5, "screen": 0.5, "board": 0.6, "battery": 0.2}
POPULATION_SIZE = 16
TRACE_SECONDS = 600.0

#: The heterogeneous sweep: six distinct traces of different lengths × four
#: platform seeds = 24 cells, the shape of a realistic evaluation grid.
MIXED_CONFIGS = (
    ("skype", 600.0),
    ("youtube", 480.0),
    ("antutu_tester", 360.0),
    ("gfxbench", 300.0),
    ("game", 420.0),
    ("record", 240.0),
)
MIXED_SEEDS = 4


def _unfactored_step(network, dt_s, power_w):
    """The seed solver's implicit step (rebuilds and solves every call)."""
    c = network.capacitances
    g = network.conductance_matrix
    t_old = network.temperatures_vector
    rhs_const = network.boundary_coupling @ network.boundary_temperatures_vector
    p = network.power_vector(power_w)
    a = np.diag(c / dt_s) + g
    b = (c / dt_s) * t_old + rhs_const + p
    network.apply_temperature_vector(np.linalg.solve(a, b))
    return network.temperatures()


def _population_members(count):
    members = []
    for seed in range(count):
        platform = DevicePlatform(seed=seed)
        members.append(
            PopulationMember(platform=platform, governor=OndemandGovernor(table=platform.freq_table))
        )
    return members


def _sequential_population(trace, count):
    results = []
    for seed in range(count):
        platform = DevicePlatform(seed=seed)
        simulator = Simulator(platform=platform, governor=OndemandGovernor(table=platform.freq_table))
        results.append(simulator.run(trace))
    return results


def _mixed_pairs(configs=MIXED_CONFIGS, seeds=MIXED_SEEDS, duration_scale=1.0):
    """(trace, platform seed) per cell of the heterogeneous sweep."""
    traces = [
        build_benchmark(name, seed=0, duration_s=duration * duration_scale)
        for name, duration in configs
    ]
    return [(trace, seed) for trace in traces for seed in range(seeds)]


def _mixed_members(pairs):
    members = []
    for _, seed in pairs:
        platform = DevicePlatform(seed=seed)
        members.append(
            PopulationMember(platform=platform, governor=OndemandGovernor(table=platform.freq_table))
        )
    return members


def _mixed_sequential(pairs):
    """The serial executor's shape: one scalar Simulator.run per cell."""
    results = []
    for trace, seed in pairs:
        platform = DevicePlatform(seed=seed)
        results.append(
            Simulator(platform=platform, governor=OndemandGovernor(table=platform.freq_table)).run(trace)
        )
    return results


def _mixed_same_trace_grouped(pairs):
    """The pre-SoA vectorized executor: one population call per distinct trace."""
    results = []
    by_trace = {}
    for trace, seed in pairs:
        by_trace.setdefault(id(trace), (trace, []))[1].append(seed)
    for trace, seeds in by_trace.values():
        results.extend(
            simulate_population(trace, _mixed_members([(trace, s) for s in seeds]))
        )
    return results


def _mixed_soa(pairs):
    """The heterogeneous engine: every cell in one structure-of-arrays batch."""
    return simulate_population_mixed([trace for trace, _ in pairs], _mixed_members(pairs))


# ---------------------------------------------------------------------------
# managed sweep (usta_mixed_population): USTA + adapter + user feedback
# ---------------------------------------------------------------------------

_USTA_PREDICTOR = None


def _usta_training(offset_c):
    """Deterministic synthetic thermal training set (hermetic, no I/O)."""
    rng = np.random.default_rng(42)
    n = 400
    cpu = rng.uniform(25.0, 60.0, n)
    battery = cpu - rng.uniform(1.0, 4.0, n)
    utilization = rng.uniform(0.0, 1.0, n)
    frequency = rng.choice(nexus4_frequency_table().frequencies_khz, n).astype(float)
    target = cpu - offset_c + 0.02 * utilization
    features = np.column_stack([cpu, battery, utilization, frequency])
    return Dataset(
        features=features,
        target=target,
        feature_names=FEATURE_NAMES,
        target_name="skin_temp_c",
    )


def _usta_predictor():
    """One fitted skin + screen predictor shared by every managed member."""
    global _USTA_PREDICTOR
    if _USTA_PREDICTOR is None:
        _USTA_PREDICTOR = RuntimePredictor(
            skin_model=LinearRegression().fit(_usta_training(5.0)),
            screen_model=LinearRegression().fit(_usta_training(7.0)),
        )
    return _USTA_PREDICTOR


def _managed_members(pairs):
    """One adaptively-managed member per cell: a USTA controller predicting
    skin *and* screen every second, wrapped in a quantile-tracker comfort
    adapter driven by a seeded simulated user (heterogeneous true limits)."""
    predictor = _usta_predictor()
    members = []
    for idx, (_, seed) in enumerate(pairs):
        platform = DevicePlatform(seed=seed)
        manager = AdaptiveComfortManager(
            inner=USTAController(
                predictor=predictor,
                skin_limit_c=37.0,
                prediction_period_s=1.0,
                predict_screen=True,
            ),
            adapter=QuantileTracker(initial_limit_c=37.0),
            feedback=UserFeedbackModel(
                true_limit_c=35.0 + (idx % 5) * 0.8,
                report_period_s=10.0,
                seed=seed,
            ),
        )
        members.append(
            PopulationMember(
                platform=platform,
                governor=OndemandGovernor(table=platform.freq_table),
                thermal_manager=manager,
            )
        )
    return members


def _managed_plane(traces, members):
    """Managed sweep with the vectorized policy plane (the default path)."""
    return simulate_population_mixed(traces, members)


def _managed_scalar(traces, members):
    """Managed sweep with per-member scalar manager calls (the baseline the
    policy plane is gated against: same SoA engine, managers off-plane)."""
    return simulate_population_mixed(traces, members, vectorize_managers=False)


def _managed_sequential(pairs, members):
    """One scalar Simulator.run per managed cell."""
    return [
        Simulator(
            platform=member.platform,
            governor=member.governor,
            thermal_manager=member.thermal_manager,
        ).run(trace)
        for (trace, _), member in zip(pairs, members)
    ]


def _time_managed(fn, pairs, repeats):
    """Best-of timing with a fresh member set per repeat (members are
    stateful; construction stays outside the timed window in every arm so
    the comparison isolates engine throughput)."""
    best = float("inf")
    for _ in range(repeats):
        members = _managed_members(pairs)
        start = time.perf_counter()
        fn(members)
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# windowed long-trace streaming (long_trace_windowed)
# ---------------------------------------------------------------------------

LONG_TRACE_SECONDS = 3 * 3600.0  # baseline: a three-hour trace per member
LONG_TRACE_MEMBERS = 4
LONG_TRACE_WINDOW = 512


class _DiscardingDrain:
    """Window drain that consumes records immediately — the bounded-memory
    consumer shape (a real sink would serialise each record as it passes)."""

    def __init__(self):
        self.records = 0
        self.done = 0

    def emit_member_window(self, index, records, done):
        for _ in records:
            self.records += 1
        if done:
            self.done += 1


def _long_unwindowed(traces):
    """Unwindowed engine: full-trace staging plus every record held at once."""
    results = simulate_population_mixed(traces, _population_members(len(traces)))
    return sum(len(r.records) for r in results)


def _long_windowed(traces, window):
    """Windowed engine draining each window's records as it completes."""
    drain = _DiscardingDrain()
    simulate_population_mixed(
        traces,
        _population_members(len(traces)),
        window_steps=window,
        window_drain=drain,
    )
    return drain.records


def _traced_peak(fn):
    """Peak traced allocation (bytes) across one call, numpy buffers included."""
    import tracemalloc

    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def measure_long_trace_windowed(
    duration_s=LONG_TRACE_SECONDS,
    members=LONG_TRACE_MEMBERS,
    window=LONG_TRACE_WINDOW,
    repeats=3,
):
    """Time and peak-memory both engines over one long synthetic trace.

    Timing runs untraced (tracemalloc costs ~2-3x); memory runs traced.  Both
    arms materialise every record — the unwindowed arm keeps them all live,
    the windowed arm drains and discards per window — so the comparison
    isolates *holding* cost, not record-construction cost.
    """
    trace = build_benchmark("skype", seed=0, duration_s=duration_s)
    trace.as_arrays()  # warm the trace's own column cache for both arms
    traces = [trace] * members
    steps = len(trace)
    member_steps = steps * members

    unwindowed_s = _time_call(lambda: _long_unwindowed(traces), repeats=repeats)
    windowed_s = _time_call(lambda: _long_windowed(traces, window), repeats=repeats)
    unwindowed_peak = _traced_peak(lambda: _long_unwindowed(traces))
    windowed_peak = _traced_peak(lambda: _long_windowed(traces, window))

    return {
        "trace": "skype",
        "duration_s": duration_s,
        "trace_steps": steps,
        "members": members,
        "member_steps": member_steps,
        "window_steps": window,
        "unwindowed_s": unwindowed_s,
        "windowed_s": windowed_s,
        "unwindowed_member_steps_per_s": member_steps / unwindowed_s,
        "windowed_member_steps_per_s": member_steps / windowed_s,
        "throughput_ratio": windowed_s / unwindowed_s,
        "unwindowed_peak_mib": unwindowed_peak / (1024 * 1024),
        "windowed_peak_mib": windowed_peak / (1024 * 1024),
        "peak_memory_ratio": unwindowed_peak / windowed_peak,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_thermal_step_unfactored(benchmark):
    """Seed-style implicit step: rebuild (C/dt + G) and dense-solve each call."""
    network = build_nexus4_network()
    benchmark(lambda: _unfactored_step(network, 1.0, POWER))


def bench_thermal_step_prefactored(benchmark):
    """Prefactored implicit step: cached LU + getrs back-substitution."""
    solver = ThermalSolver(build_nexus4_network())
    solver.step(1.0, POWER)  # warm the factorization cache
    benchmark(lambda: solver.step(1.0, POWER))


def bench_population_16_sequential(benchmark):
    """16 same-trace users as 16 sequential Simulator.run calls."""
    trace = build_benchmark("skype", seed=0, duration_s=TRACE_SECONDS)
    results = benchmark.pedantic(
        lambda: _sequential_population(trace, POPULATION_SIZE), rounds=3, iterations=1
    )
    assert len(results) == POPULATION_SIZE


def bench_population_16_vectorized(benchmark):
    """16 same-trace users as one vectorized population (bit-exact mode)."""
    trace = build_benchmark("skype", seed=0, duration_s=TRACE_SECONDS)

    def run():
        return simulate_population(trace, _population_members(POPULATION_SIZE))

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == POPULATION_SIZE


def bench_population_16_vectorized_blocked(benchmark):
    """Same population with one blocked multi-RHS solve per step (exact=False)."""
    trace = build_benchmark("skype", seed=0, duration_s=TRACE_SECONDS)

    def run():
        return simulate_population(trace, _population_members(POPULATION_SIZE), exact=False)

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == POPULATION_SIZE


def bench_mixed_24_sequential(benchmark):
    """The heterogeneous 24-cell sweep as 24 sequential Simulator.run calls."""
    pairs = _mixed_pairs()
    results = benchmark.pedantic(lambda: _mixed_sequential(pairs), rounds=3, iterations=1)
    assert len(results) == len(pairs)


def bench_mixed_24_soa_batch(benchmark):
    """The heterogeneous 24-cell sweep as one structure-of-arrays batch."""
    pairs = _mixed_pairs()
    results = benchmark.pedantic(lambda: _mixed_soa(pairs), rounds=3, iterations=1)
    assert len(results) == len(pairs)


def bench_managed_24_scalar_managers(benchmark):
    """The managed 24-cell sweep with per-member scalar manager calls."""
    pairs = _mixed_pairs()
    traces = [trace for trace, _ in pairs]
    results = benchmark.pedantic(
        lambda: _managed_scalar(traces, _managed_members(pairs)), rounds=3, iterations=1
    )
    assert len(results) == len(pairs)


def bench_managed_24_policy_plane(benchmark):
    """The managed 24-cell sweep through the vectorized policy plane."""
    pairs = _mixed_pairs()
    traces = [trace for trace, _ in pairs]
    results = benchmark.pedantic(
        lambda: _managed_plane(traces, _managed_members(pairs)), rounds=3, iterations=1
    )
    assert len(results) == len(pairs)


# ---------------------------------------------------------------------------
# baseline writer (python benchmarks/bench_batch_runtime.py)
# ---------------------------------------------------------------------------

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_batch_runtime.json")


def _time_call(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def write_baseline(path=BASELINE_PATH):
    """Measure the three tiers and write the JSON baseline."""
    # -- thermal step ------------------------------------------------------
    network = build_nexus4_network()
    loops = 20_000
    seed_s = _time_call(lambda: [_unfactored_step(network, 1.0, POWER) for _ in range(loops)])
    solver = ThermalSolver(build_nexus4_network())
    solver.step(1.0, POWER)
    pre_s = _time_call(lambda: [solver.step(1.0, POWER) for _ in range(loops)])

    # -- single run --------------------------------------------------------
    trace = build_benchmark("skype", seed=0, duration_s=TRACE_SECONDS)
    single_s = _time_call(lambda: _sequential_population(trace, 1))

    # -- population --------------------------------------------------------
    sequential_s = _time_call(lambda: _sequential_population(trace, POPULATION_SIZE))
    vectorized_s = _time_call(
        lambda: simulate_population(trace, _population_members(POPULATION_SIZE))
    )
    blocked_s = _time_call(
        lambda: simulate_population(trace, _population_members(POPULATION_SIZE), exact=False)
    )

    # -- heterogeneous mixed-trace sweep -----------------------------------
    pairs = _mixed_pairs()
    mixed_sequential_s = _time_call(lambda: _mixed_sequential(pairs))
    mixed_grouped_s = _time_call(lambda: _mixed_same_trace_grouped(pairs))
    mixed_soa_s = _time_call(lambda: _mixed_soa(pairs))
    mixed_member_steps = sum(len(t) for t, _ in pairs)

    # -- managed mixed-trace sweep (usta_mixed_population) -----------------
    traces = [trace for trace, _ in pairs]
    managed_plane_s = _time_managed(lambda m: _managed_plane(traces, m), pairs, repeats=8)
    managed_scalar_s = _time_managed(lambda m: _managed_scalar(traces, m), pairs, repeats=5)
    managed_sequential_s = _time_managed(
        lambda m: _managed_sequential(pairs, m), pairs, repeats=3
    )

    # -- windowed long-trace streaming -------------------------------------
    long_trace = measure_long_trace_windowed()

    steps = len(trace)
    member_steps = steps * POPULATION_SIZE
    baseline = {
        "config": {
            "population_size": POPULATION_SIZE,
            "trace": "skype",
            "trace_steps": steps,
            "thermal_step_loops": loops,
        },
        "thermal_step": {
            "unfactored_us": 1e6 * seed_s / loops,
            "prefactored_us": 1e6 * pre_s / loops,
            "speedup": seed_s / pre_s,
        },
        "single_run": {
            "seconds": single_s,
            "steps_per_s": steps / single_s,
        },
        "population_16": {
            "sequential_s": sequential_s,
            "vectorized_exact_s": vectorized_s,
            "vectorized_blocked_s": blocked_s,
            "sequential_member_steps_per_s": member_steps / sequential_s,
            "vectorized_member_steps_per_s": member_steps / vectorized_s,
            "speedup_exact": sequential_s / vectorized_s,
            "speedup_blocked": sequential_s / blocked_s,
        },
        "mixed_trace_population": {
            "cells": len(pairs),
            "distinct_traces": len(MIXED_CONFIGS),
            "member_steps": mixed_member_steps,
            "sequential_s": mixed_sequential_s,
            "same_trace_grouped_s": mixed_grouped_s,
            "soa_batch_s": mixed_soa_s,
            "sequential_member_steps_per_s": mixed_member_steps / mixed_sequential_s,
            "soa_member_steps_per_s": mixed_member_steps / mixed_soa_s,
            "speedup_soa_vs_sequential": mixed_sequential_s / mixed_soa_s,
            "speedup_soa_vs_grouped": mixed_grouped_s / mixed_soa_s,
        },
        "usta_mixed_population": {
            "cells": len(pairs),
            "distinct_traces": len(MIXED_CONFIGS),
            "member_steps": mixed_member_steps,
            "prediction_period_s": 1.0,
            "predict_screen": True,
            "policy_plane_s": managed_plane_s,
            "scalar_managers_s": managed_scalar_s,
            "sequential_s": managed_sequential_s,
            "plane_member_steps_per_s": mixed_member_steps / managed_plane_s,
            "scalar_manager_member_steps_per_s": mixed_member_steps / managed_scalar_s,
            "speedup_plane_vs_scalar_managers": managed_scalar_s / managed_plane_s,
            "speedup_plane_vs_sequential": managed_sequential_s / managed_plane_s,
        },
        "long_trace_windowed": long_trace,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    return baseline


#: Generous smoke-gate thresholds: the committed baseline records >8x
#: (unmanaged, vs sequential) and >3x (managed, vs scalar managers), but CI
#: machines are noisy — the gates only have to catch a collapse to the
#: scalar path (speedup ~1.0), not defend the exact numbers.
SMOKE_MIN_SPEEDUP = 1.5
SMOKE_MIN_MANAGED_SPEEDUP = 1.5
#: Windowed long-trace gates: windowing must collapse peak memory by at least
#: an order of magnitude (the baseline records far more) while staying within
#: 10% of the unwindowed engine's wall time (best-of-3 per arm — the two arms
#: do identical work, so this is noise-tolerant).
SMOKE_MIN_PEAK_MEMORY_RATIO = 10.0
SMOKE_MAX_WINDOWED_SLOWDOWN = 1.10


class _ParityDrain:
    """Window drain that checks each drained record against a reference."""

    def __init__(self, expected):
        self.expected = expected
        self.offsets = [0] * len(expected)
        self.mismatch = False
        self.done = [False] * len(expected)

    def emit_member_window(self, index, records, done):
        offset = self.offsets[index]
        reference = self.expected[index]
        for record in records:
            if offset >= len(reference) or record != reference[offset]:
                self.mismatch = True
            offset += 1
        self.offsets[index] = offset
        if done:
            self.done[index] = True


def run_smoke(min_speedup=SMOKE_MIN_SPEEDUP, min_managed=SMOKE_MIN_MANAGED_SPEEDUP):
    """Scaled-down mixed-trace sweeps (unmanaged + managed); fail unless the
    SoA batch and the policy plane clearly win with bit-identical records."""
    pairs = _mixed_pairs(configs=MIXED_CONFIGS[:4], seeds=3, duration_scale=0.5)
    sequential_results = _mixed_sequential(pairs)
    soa_results = _mixed_soa(pairs)
    for reference, batched in zip(sequential_results, soa_results):
        if reference.records != batched.records:
            print("bench-smoke: FAIL — SoA batch records diverged from sequential")
            return 1
    sequential_s = _time_call(lambda: _mixed_sequential(pairs), repeats=2)
    soa_s = _time_call(lambda: _mixed_soa(pairs), repeats=2)
    member_steps = sum(len(t) for t, _ in pairs)
    speedup = sequential_s / soa_s
    print(
        f"bench-smoke: {len(pairs)} mixed-trace cells, {member_steps} member-steps — "
        f"sequential {member_steps / sequential_s:,.0f}/s, "
        f"SoA batch {member_steps / soa_s:,.0f}/s ({speedup:.2f}x)"
    )
    if speedup < min_speedup:
        print(
            f"bench-smoke: FAIL — SoA speedup {speedup:.2f}x below the "
            f"{min_speedup:.1f}x gate (scalar fallback regression?)"
        )
        return 1

    # -- managed scenario: the policy plane vs scalar per-member managers --
    traces = [trace for trace, _ in pairs]
    plane_results = _managed_plane(traces, _managed_members(pairs))
    scalar_results = _managed_scalar(traces, _managed_members(pairs))
    sequential_managed = _managed_sequential(pairs, _managed_members(pairs))
    for plane_r, scalar_r, seq_r in zip(plane_results, scalar_results, sequential_managed):
        if not (plane_r.records == scalar_r.records == seq_r.records):
            print(
                "bench-smoke: FAIL — managed records diverged "
                "(policy plane vs scalar managers vs sequential)"
            )
            return 1
    plane_s = _time_managed(lambda m: _managed_plane(traces, m), pairs, repeats=3)
    scalar_s = _time_managed(lambda m: _managed_scalar(traces, m), pairs, repeats=2)
    managed_speedup = scalar_s / plane_s
    print(
        f"bench-smoke: managed sweep — scalar managers "
        f"{member_steps / scalar_s:,.0f}/s, policy plane "
        f"{member_steps / plane_s:,.0f}/s ({managed_speedup:.2f}x)"
    )
    if managed_speedup < min_managed:
        print(
            f"bench-smoke: FAIL — policy-plane speedup {managed_speedup:.2f}x below "
            f"the {min_managed:.1f}x gate (manager scalar-fallback regression?)"
        )
        return 1

    # -- windowed long-trace scenario: bounded memory at level throughput --
    parity_trace = build_benchmark("skype", seed=0, duration_s=600.0)
    parity_traces = [parity_trace] * 3
    reference = [
        r.records
        for r in simulate_population_mixed(parity_traces, _population_members(3))
    ]
    parity = _ParityDrain(reference)
    simulate_population_mixed(
        parity_traces,
        _population_members(3),
        window_steps=64,
        window_drain=parity,
    )
    if parity.mismatch or parity.offsets != [len(r) for r in reference] or not all(
        parity.done
    ):
        print("bench-smoke: FAIL — windowed drain records diverged from unwindowed")
        return 1

    stats = measure_long_trace_windowed(duration_s=3600.0, window=256, repeats=3)
    print(
        f"bench-smoke: windowed long trace — {stats['members']} members x "
        f"{stats['trace_steps']} steps, window {stats['window_steps']}: "
        f"peak {stats['unwindowed_peak_mib']:.1f} MiB -> "
        f"{stats['windowed_peak_mib']:.1f} MiB "
        f"({stats['peak_memory_ratio']:.1f}x lower), throughput "
        f"{stats['windowed_member_steps_per_s']:,.0f}/s vs "
        f"{stats['unwindowed_member_steps_per_s']:,.0f}/s unwindowed"
    )
    if stats["peak_memory_ratio"] < SMOKE_MIN_PEAK_MEMORY_RATIO:
        print(
            f"bench-smoke: FAIL — windowed peak memory only "
            f"{stats['peak_memory_ratio']:.1f}x below unwindowed (gate: "
            f"{SMOKE_MIN_PEAK_MEMORY_RATIO:.0f}x; window drain regression?)"
        )
        return 1
    if stats["throughput_ratio"] > SMOKE_MAX_WINDOWED_SLOWDOWN:
        print(
            f"bench-smoke: FAIL — windowed engine {stats['throughput_ratio']:.2f}x "
            f"the unwindowed wall time (gate: {SMOKE_MAX_WINDOWED_SLOWDOWN:.2f}x)"
        )
        return 1
    print("bench-smoke: OK (records bit-identical, batch clearly faster)")
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    report = write_baseline()
    print(json.dumps(report, indent=2))
    speedup = report["population_16"]["speedup_exact"]
    mixed = report["mixed_trace_population"]["speedup_soa_vs_sequential"]
    managed = report["usta_mixed_population"]["speedup_plane_vs_scalar_managers"]
    print(f"\n16-user population speedup (bit-exact): {speedup:.2f}x", file=sys.stderr)
    print(f"24-cell mixed-trace SoA speedup (bit-exact): {mixed:.2f}x", file=sys.stderr)
    print(f"24-cell managed policy-plane speedup (bit-exact): {managed:.2f}x", file=sys.stderr)
