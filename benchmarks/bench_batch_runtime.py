"""Benchmarks of the batched experiment runtime.

Not a paper figure: these measure the three performance tiers the runtime
introduces —

1. prefactored implicit thermal stepping (vs the seed's rebuild-and-solve),
2. a single ``Simulator.run`` on the prefactored substrate,
3. a 16-user same-trace population through the vectorized engine (vs 16
   sequential ``Simulator.run`` calls),

so regressions in the batching machinery are visible over time.

Run under pytest-benchmark as part of the harness, or directly::

    python benchmarks/bench_batch_runtime.py

which re-measures everything and rewrites ``benchmarks/BENCH_batch_runtime.json``
— the committed baseline that gives future PRs a perf trajectory.
"""

import json
import os
import sys
import time

if __name__ == "__main__":  # allow running as a script without PYTHONPATH
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.device.platform import DevicePlatform
from repro.governors import OndemandGovernor
from repro.runtime import PopulationMember, simulate_population
from repro.sim.engine import Simulator
from repro.thermal import ThermalSolver, build_nexus4_network
from repro.workloads.benchmarks import build_benchmark

POWER = {"cpu": 2.5, "screen": 0.5, "board": 0.6, "battery": 0.2}
POPULATION_SIZE = 16
TRACE_SECONDS = 600.0


def _unfactored_step(network, dt_s, power_w):
    """The seed solver's implicit step (rebuilds and solves every call)."""
    c = network.capacitances
    g = network.conductance_matrix
    t_old = network.temperatures_vector
    rhs_const = network.boundary_coupling @ network.boundary_temperatures_vector
    p = network.power_vector(power_w)
    a = np.diag(c / dt_s) + g
    b = (c / dt_s) * t_old + rhs_const + p
    network.apply_temperature_vector(np.linalg.solve(a, b))
    return network.temperatures()


def _population_members(count):
    members = []
    for seed in range(count):
        platform = DevicePlatform(seed=seed)
        members.append(
            PopulationMember(platform=platform, governor=OndemandGovernor(table=platform.freq_table))
        )
    return members


def _sequential_population(trace, count):
    results = []
    for seed in range(count):
        platform = DevicePlatform(seed=seed)
        simulator = Simulator(platform=platform, governor=OndemandGovernor(table=platform.freq_table))
        results.append(simulator.run(trace))
    return results


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_thermal_step_unfactored(benchmark):
    """Seed-style implicit step: rebuild (C/dt + G) and dense-solve each call."""
    network = build_nexus4_network()
    benchmark(lambda: _unfactored_step(network, 1.0, POWER))


def bench_thermal_step_prefactored(benchmark):
    """Prefactored implicit step: cached LU + getrs back-substitution."""
    solver = ThermalSolver(build_nexus4_network())
    solver.step(1.0, POWER)  # warm the factorization cache
    benchmark(lambda: solver.step(1.0, POWER))


def bench_population_16_sequential(benchmark):
    """16 same-trace users as 16 sequential Simulator.run calls."""
    trace = build_benchmark("skype", seed=0, duration_s=TRACE_SECONDS)
    results = benchmark.pedantic(
        lambda: _sequential_population(trace, POPULATION_SIZE), rounds=3, iterations=1
    )
    assert len(results) == POPULATION_SIZE


def bench_population_16_vectorized(benchmark):
    """16 same-trace users as one vectorized population (bit-exact mode)."""
    trace = build_benchmark("skype", seed=0, duration_s=TRACE_SECONDS)

    def run():
        return simulate_population(trace, _population_members(POPULATION_SIZE))

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == POPULATION_SIZE


def bench_population_16_vectorized_blocked(benchmark):
    """Same population with one blocked multi-RHS solve per step (exact=False)."""
    trace = build_benchmark("skype", seed=0, duration_s=TRACE_SECONDS)

    def run():
        return simulate_population(trace, _population_members(POPULATION_SIZE), exact=False)

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == POPULATION_SIZE


# ---------------------------------------------------------------------------
# baseline writer (python benchmarks/bench_batch_runtime.py)
# ---------------------------------------------------------------------------

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_batch_runtime.json")


def _time_call(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def write_baseline(path=BASELINE_PATH):
    """Measure the three tiers and write the JSON baseline."""
    # -- thermal step ------------------------------------------------------
    network = build_nexus4_network()
    loops = 20_000
    seed_s = _time_call(lambda: [_unfactored_step(network, 1.0, POWER) for _ in range(loops)])
    solver = ThermalSolver(build_nexus4_network())
    solver.step(1.0, POWER)
    pre_s = _time_call(lambda: [solver.step(1.0, POWER) for _ in range(loops)])

    # -- single run --------------------------------------------------------
    trace = build_benchmark("skype", seed=0, duration_s=TRACE_SECONDS)
    single_s = _time_call(lambda: _sequential_population(trace, 1))

    # -- population --------------------------------------------------------
    sequential_s = _time_call(lambda: _sequential_population(trace, POPULATION_SIZE))
    vectorized_s = _time_call(
        lambda: simulate_population(trace, _population_members(POPULATION_SIZE))
    )
    blocked_s = _time_call(
        lambda: simulate_population(trace, _population_members(POPULATION_SIZE), exact=False)
    )

    steps = len(trace)
    member_steps = steps * POPULATION_SIZE
    baseline = {
        "config": {
            "population_size": POPULATION_SIZE,
            "trace": "skype",
            "trace_steps": steps,
            "thermal_step_loops": loops,
        },
        "thermal_step": {
            "unfactored_us": 1e6 * seed_s / loops,
            "prefactored_us": 1e6 * pre_s / loops,
            "speedup": seed_s / pre_s,
        },
        "single_run": {
            "seconds": single_s,
            "steps_per_s": steps / single_s,
        },
        "population_16": {
            "sequential_s": sequential_s,
            "vectorized_exact_s": vectorized_s,
            "vectorized_blocked_s": blocked_s,
            "sequential_member_steps_per_s": member_steps / sequential_s,
            "vectorized_member_steps_per_s": member_steps / vectorized_s,
            "speedup_exact": sequential_s / vectorized_s,
            "speedup_blocked": sequential_s / blocked_s,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    return baseline


if __name__ == "__main__":
    report = write_baseline()
    print(json.dumps(report, indent=2))
    speedup = report["population_16"]["speedup_exact"]
    print(f"\n16-user population speedup (bit-exact): {speedup:.2f}x", file=sys.stderr)
