"""§IV.A — run-time overhead of the skin/screen temperature prediction.

The paper measures 5.6 ms for the skin prediction and 6.7 ms for the screen
prediction per 3-second window on the phone (~0.4 % overhead).  This benchmark
measures the same quantity for the deployed REPTree predictor in the
reproduction and checks it stays far below the window budget.
"""

from conftest import print_section

from repro.analysis.paper_data import PAPER_PREDICTION_OVERHEAD_MS
from repro.core.predictor import PredictionFeatures


def bench_predictor_overhead(benchmark, context):
    """Measure the per-window prediction latency of the deployed predictor."""
    features = PredictionFeatures(
        cpu_temp_c=48.0, battery_temp_c=36.0, utilization=0.7, frequency_khz=1_134_000.0
    )

    def predict_once():
        return context.predictor.predict(features, predict_screen=True)

    prediction = benchmark(predict_once)
    mean_latency_ms = benchmark.stats.stats.mean * 1e3

    body = (
        f"measured skin+screen prediction latency: {mean_latency_ms:.3f} ms per window\n"
        f"paper reference (WEKA REPTree on the Nexus 4): "
        f"{PAPER_PREDICTION_OVERHEAD_MS['total']:.3f} ms per 3 s window (~0.4% overhead)"
    )
    print_section("Prediction overhead (paper section IV.A)", body)

    assert prediction.skin_temp_c > 0.0
    # Stay far below the 3-second prediction window (the paper's budget).
    assert benchmark.stats.stats.mean < 0.1
