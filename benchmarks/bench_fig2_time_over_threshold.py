"""Figure 2 — % of the half-hour Skype call spent above each comfort limit.

Eleven limit settings (the ten participants plus the "default" 37 °C user) are
evaluated: USTA is configured with each limit and the Skype video call is
replayed; the reported number is the share of the call the skin temperature
still spends above that limit.
"""

from conftest import print_section

from repro.analysis import (
    PAPER_FIG2_DEFAULT_USER_PCT,
    figure2_time_over_threshold,
    render_figure2,
)


def bench_fig2_time_over_threshold(benchmark, context, bench_scale):
    """Regenerate Figure 2 (time-over-limit per user-specific setting)."""
    duration_s = 30 * 60 * bench_scale

    def run():
        return figure2_time_over_threshold(context, duration_s=duration_s)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = render_figure2(rows)
    body += (
        f"\npaper reference: the default (37 C) user spends "
        f"{PAPER_FIG2_DEFAULT_USER_PCT:.1f}% of the call above the limit"
    )
    print_section("Figure 2 — % of the Skype call above each user's limit (under USTA)", body)

    assert len(rows) == 11
    by_user = {row.user_id: row.percent_time_over_limit for row in rows}
    assert all(0.0 <= value <= 100.0 for value in by_user.values())
    # The most tolerant user is never pushed over their limit.
    assert by_user["g"] == 0.0
    if bench_scale >= 0.8:
        # Full-duration shape checks: the least tolerant users cannot be fully
        # protected because the call's non-CPU heat alone exceeds their limit
        # (the spread across users is the figure's point), while the default
        # user's exposure stays well below the uncontrolled baseline.
        assert by_user["f"] > by_user["g"]
        assert by_user["default"] <= 50.0
