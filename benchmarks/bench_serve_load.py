"""Sustained-load benchmark of the persistent serving front end + fleet sweeps.

Not a paper figure: this measures what the "millions of users" story costs —
the p50/p99 feed latency of :class:`repro.fleet.service.PolicyService` under
sustained load at 100k+ concurrent sessions (the dispatcher itself, no
socket), the end-to-end request RTT through the asyncio socket server, and
how a fleet sweep's wall time scales with worker count.

Run directly::

    python benchmarks/bench_serve_load.py            # rewrites BENCH_serve_load.json
    python benchmarks/bench_serve_load.py --smoke    # CI gate, reduced sizes

The ``--smoke`` mode (wired into ``make check``) runs a reduced session
count and also cross-checks that 1-worker and 2-worker fleet sweeps of the
same plan produce byte-identical merged stores.
"""

import argparse
import gc
import json
import os
import shutil
import socket
import statistics
import sys
import tempfile
import threading
import time

if __name__ == "__main__":  # allow running as a script without PYTHONPATH
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api.specs import AdapterSpec, ManagerSpec, PolicySpec, PredictorSpec
from repro.fleet import FleetCoordinator, PolicyService, run_service, stores_byte_identical
from repro.fleet.smoke import SMOKE_RECIPE, build_smoke_plan
from repro.runtime.artifacts import ARTIFACT_ENV_VAR
from repro.users import paper_population

BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_serve_load.json")

SESSIONS = 100_000
ROUNDS = 3
CHUNK = 1_000  # sessions per feed_batch request (one batched predictor call)
SOCKET_REQUESTS = 2_000
FLEET_WORKERS = (1, 2, 4)


def _policy() -> PolicySpec:
    return PolicySpec(
        manager=ManagerSpec("usta", predictor=PredictorSpec("trained", params=SMOKE_RECIPE)),
        adapter=AdapterSpec("quantile_tracker"),
    )


def _service(use_plane: bool = True) -> PolicyService:
    return PolicyService(
        _policy(),
        profiles={p.user_id: p for p in paper_population()},
        use_plane=use_plane,
    )


def _sample(time_s: float, i: int) -> dict:
    return {
        "time_s": time_s,
        "utilization": 0.5 + 0.4 * ((i % 7) / 6.0),
        "frequency_khz": 1_728_000.0,
        "sensors": {"cpu": 40.0 + (i % 11) * 0.5, "battery": 32.0 + (i % 5) * 0.2},
    }


def _quantiles(values, scale=1.0):
    ordered = sorted(values)
    return {
        "p50": scale * statistics.median(ordered),
        "p99": scale * ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))],
        "max": scale * ordered[-1],
    }


def serve_load(sessions: int, rounds: int, chunk: int, use_plane: bool = True) -> dict:
    """Open ``sessions`` concurrent sessions and feed them ``rounds`` ticks.

    Each request is one ``feed_batch`` of ``chunk`` sessions through
    ``PolicyService.handle`` (wire-dict parsing included, no socket), so the
    request latencies are what a front end would see per batched call;
    ``amortized_feed_us`` is that divided across the request's actual batch
    size.  ``feed_latency_us`` is measured for real: individually timed
    single-session ``feed`` ops (what one device's unbatched request costs),
    not a rescaled copy of the request quantiles.
    """
    service = _service(use_plane=use_plane)
    users = sorted(service.profiles)
    start = time.perf_counter()
    session_ids = []
    for i in range(sessions):
        sid = f"s{i:06d}"
        response = service.handle({"op": "open", "session": sid, "user": users[i % len(users)]})
        assert response["ok"], response
        session_ids.append(sid)
    open_elapsed = time.perf_counter() - start

    # Production GC hygiene for a resident fleet: the session population is a
    # permanent object graph, and without freeze() every full collection
    # re-scans it — ~0.5s pauses that land squarely in the request tail at
    # 100k sessions.  Applied identically to the plane and scalar runs.
    gc.collect()
    gc.freeze()
    try:
        request_s = []
        batch_sizes = []
        feeds = 0
        start = time.perf_counter()
        for tick in range(rounds):
            for lo in range(0, sessions, chunk):
                ids = session_ids[lo : lo + chunk]
                request = {
                    "op": "feed_batch",
                    "samples": {sid: _sample(float(tick), lo + k) for k, sid in enumerate(ids)},
                }
                # A sprinkle of feedback keeps the adapter path on, like real users.
                if lo == 0:
                    request["feedback"] = {
                        ids[0]: [{"time_s": float(tick), "kind": "discomfort", "skin_temp_c": 35.0}]
                    }
                t0 = time.perf_counter()
                response = service.handle(request)
                request_s.append(time.perf_counter() - t0)
                assert response["ok"], response
                batch_sizes.append(len(ids))
                feeds += len(ids)
        feed_elapsed = time.perf_counter() - start

        # Real per-feed latency: time single-session feed ops one by one,
        # over a sample of sessions spread across the pool, at a fresh tick.
        probe_ids = session_ids[:: max(1, sessions // 1_000)][:1_000]
        single_s = []
        for k, sid in enumerate(probe_ids):
            request = {"op": "feed", "session": sid, "sample": _sample(float(rounds), k)}
            t0 = time.perf_counter()
            response = service.handle(request)
            single_s.append(time.perf_counter() - t0)
            assert response["ok"], response
    finally:
        gc.unfreeze()

    return {
        "sessions": sessions,
        "rounds": rounds,
        "chunk": chunk,
        "plane": use_plane,
        "plane_resident": service.pool.plane_resident_count,
        "open_seconds": open_elapsed,
        "opens_per_s": sessions / open_elapsed,
        "feeds": feeds,
        "feeds_per_s": feeds / feed_elapsed,
        "request_ms": _quantiles(request_s, scale=1e3),
        "amortized_feed_us": _quantiles(
            [r / size for r, size in zip(request_s, batch_sizes)], scale=1e6
        ),
        "feed_latency_us": _quantiles(single_s, scale=1e6),
    }


def _parity_requests(sessions: int, rounds: int, chunk: int, users) -> list:
    """One deterministic request script exercising the parity-sensitive paths:
    batched feeds, skin-channel samples (arming the simulated-feedback gate),
    external feedback events, and single feeds on due and non-due ticks."""
    sids = [f"p{i:05d}" for i in range(sessions)]
    requests = [
        {"op": "open", "session": sid, "user": users[i % len(users)]}
        for i, sid in enumerate(sids)
    ]
    for tick in range(rounds):
        t = tick * 7.0
        for lo in range(0, sessions, chunk):
            ids = sids[lo : lo + chunk]
            samples = {}
            for k, sid in enumerate(ids):
                sample = _sample(t, lo + k)
                if (lo + k) % 3 == 0:
                    # A felt skin channel lets the user-feedback model fire.
                    sample["sensors"]["skin"] = 33.0 + (tick % 4) * 0.7
                samples[sid] = sample
            request = {"op": "feed_batch", "samples": samples}
            if lo == 0 and len(ids) > 2:
                request["feedback"] = {
                    ids[1]: [
                        {"time_s": t, "kind": "discomfort", "skin_temp_c": 35.5}
                    ],
                    ids[2]: [
                        {"time_s": t, "kind": "discomfort", "skin_temp_c": 34.2}
                    ],
                }
            requests.append(request)
        # Single feeds between batch ticks: one non-due (prediction held)
        # and one that will be due at the next tick boundary.
        requests.append({"op": "feed", "session": sids[0], "sample": _sample(t + 0.5, tick)})
        requests.append(
            {"op": "feedback", "session": sids[0],
             "event": {"time_s": t + 0.5, "kind": "discomfort", "skin_temp_c": 35.0}}
        )
    return requests


def parity_check(sessions: int = 200, rounds: int = 4, chunk: int = 50) -> int:
    """Drive identical request scripts through a plane and a scalar service;
    any response byte that differs is a parity bug.  Returns requests checked."""
    plane = _service(use_plane=True)
    scalar = _service(use_plane=False)
    users = sorted(plane.profiles)
    requests = _parity_requests(sessions, rounds, chunk, users)
    for index, request in enumerate(requests):
        a = json.dumps(plane.handle(request), sort_keys=True)
        b = json.dumps(scalar.handle(request), sort_keys=True)
        assert a == b, (
            f"plane/scalar parity broke at request {index} "
            f"(op {request.get('op')!r}):\n plane: {a[:400]}\nscalar: {b[:400]}"
        )
    assert plane.pool.plane_resident_count == sessions, "plane never engaged"
    return len(requests)


def socket_rtt(requests: int, sessions: int) -> dict:
    """End-to-end single-feed RTT through the asyncio socket server."""
    service = _service()
    users = sorted(service.profiles)
    bound = {}
    ready = threading.Event()

    def _on_listening(host, port):
        bound["addr"] = (host, port)
        ready.set()

    thread = threading.Thread(
        target=run_service,
        args=(service, "127.0.0.1", 0),
        kwargs={"checkpoint_period_s": None, "on_listening": _on_listening},
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=30), "server never bound"
    conn = socket.create_connection(bound["addr"])
    fh = conn.makefile("rwb")

    def rpc(request):
        fh.write(json.dumps(request, separators=(",", ":")).encode() + b"\n")
        fh.flush()
        return json.loads(fh.readline())

    session_ids = []
    for i in range(sessions):
        sid = f"r{i:05d}"
        assert rpc({"op": "open", "session": sid, "user": users[i % len(users)]})["ok"]
        session_ids.append(sid)

    rtt_s = []
    for i in range(requests):
        sid = session_ids[i % len(session_ids)]
        t0 = time.perf_counter()
        response = rpc({"op": "feed", "session": sid, "sample": _sample(float(i), i)})
        rtt_s.append(time.perf_counter() - t0)
        assert response["ok"], response
    rpc({"op": "shutdown"})
    conn.close()
    thread.join(timeout=30)
    return {
        "requests": requests,
        "sessions": sessions,
        "rtt_ms": _quantiles(rtt_s, scale=1e3),
        "requests_per_s": requests / sum(rtt_s),
    }


def fleet_scaling(workers_list, repeat: int, duration_s: float, scratch: str) -> dict:
    """Wall time of the same fleet sweep at increasing worker counts."""
    plan = build_smoke_plan(repeat=repeat, duration_s=duration_s)
    results = {}
    directories = {}
    for workers in workers_list:
        directory = os.path.join(scratch, f"fleet-w{workers}")
        report = FleetCoordinator(plan, directory, workers=workers).run()
        results[str(workers)] = {
            "seconds": report.elapsed_s,
            "units": report.n_units,
            "cells": report.n_cells,
        }
        directories[workers] = directory
    base = results[str(workers_list[0])]["seconds"]
    for workers in workers_list:
        results[str(workers)]["speedup_vs_1"] = base / results[str(workers)]["seconds"]
    first = directories[workers_list[0]]
    for workers in workers_list[1:]:
        diff = stores_byte_identical(first, directories[workers])
        assert diff is None, f"merged stores diverge between worker counts: {diff}"
    return results


def run_full() -> int:
    scratch = tempfile.mkdtemp(prefix="bench-serve-load-")
    os.environ[ARTIFACT_ENV_VAR] = os.path.join(scratch, "artifacts")
    try:
        checked = parity_check()
        plane_load = serve_load(SESSIONS, ROUNDS, CHUNK, use_plane=True)
        scalar_load = serve_load(SESSIONS, ROUNDS, CHUNK, use_plane=False)
        payload = {
            "config": {
                "sessions": SESSIONS,
                "rounds": ROUNDS,
                "chunk": CHUNK,
                "policy": "usta+quantile_tracker (trained linear recipe)",
                # Fleet speedup is bounded by the host: on a 1-core machine
                # the workers time-slice and the scaling section measures
                # pure coordination overhead instead.
                "cpu_count": os.cpu_count(),
            },
            "serve_load": plane_load,
            "serve_load_scalar": scalar_load,
            "plane_speedup": plane_load["feeds_per_s"] / scalar_load["feeds_per_s"],
            "parity": {"requests_checked": checked, "ok": True},
            "socket_rtt": socket_rtt(SOCKET_REQUESTS, sessions=2_000),
            "fleet_scaling": fleet_scaling(
                FLEET_WORKERS, repeat=12, duration_s=1200.0, scratch=scratch
            ),
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    with open(BASELINE, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {BASELINE}")
    return 0


def run_smoke() -> int:
    scratch = tempfile.mkdtemp(prefix="bench-serve-smoke-")
    os.environ[ARTIFACT_ENV_VAR] = os.path.join(scratch, "artifacts")
    try:
        checked = parity_check()
        load = serve_load(sessions=2_000, rounds=3, chunk=500, use_plane=True)
        scalar = serve_load(sessions=2_000, rounds=3, chunk=500, use_plane=False)
        rtt = socket_rtt(requests=200, sessions=100)
        scaling = fleet_scaling((1, 2), repeat=1, duration_s=20.0, scratch=scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    speedup = load["feeds_per_s"] / scalar["feeds_per_s"]
    print(
        f"serve-load smoke: {load['feeds_per_s']:,.0f} feeds/s over "
        f"{load['sessions']} sessions (plane, {speedup:.2f}x vs scalar; "
        f"p99 single feed {load['feed_latency_us']['p99']:.1f}us), "
        f"plane/scalar parity ok over {checked} requests, "
        f"socket RTT p99 {rtt['rtt_ms']['p99']:.2f}ms, "
        f"fleet 2-worker parity ok"
    )
    failures = []
    # Generous gates: they catch order-of-magnitude regressions (an
    # accidental per-feed retrain, a per-request predictor rebuild), not
    # machine noise.
    if load["feeds_per_s"] < 2_000:
        failures.append(f"feed throughput collapsed: {load['feeds_per_s']:,.0f} feeds/s")
    if speedup < 1.5:
        failures.append(
            f"resident plane only {speedup:.2f}x over scalar (floor 1.5x)"
        )
    if load["feed_latency_us"]["p99"] > 50_000:
        failures.append(f"p99 feed latency {load['feed_latency_us']['p99']:.0f}us")
    if rtt["rtt_ms"]["p99"] > 1_000:
        failures.append(f"socket RTT p99 {rtt['rtt_ms']['p99']:.0f}ms")
    if str(2) in scaling and scaling["2"]["cells"] != scaling["1"]["cells"]:
        failures.append("worker counts executed different cell sets")
    for failure in failures:
        print(f"serve-load smoke: FAIL - {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="reduced CI gate")
    args = parser.parse_args()
    sys.exit(run_smoke() if args.smoke else run_full())
