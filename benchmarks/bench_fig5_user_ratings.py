"""Figure 5 — satisfaction ratings of the blind baseline-vs-USTA study.

Each participant "holds" the phone through a 30-minute Skype call under the
baseline governor and another under USTA configured to their own comfort
limit, then rates both sessions from 1 to 5.  The paper reports an average of
4.0 for the baseline and 4.3 for USTA, with more users preferring USTA.
"""

from conftest import print_section

from repro.analysis import PAPER_FIG5_MEAN_RATINGS, figure5_user_ratings, render_figure5


def bench_fig5_user_ratings(benchmark, context, bench_scale):
    """Regenerate Figure 5 (per-user ratings and preferences)."""
    duration_s = 30 * 60 * bench_scale

    def run():
        return figure5_user_ratings(context, duration_s=duration_s)

    rows, summary = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section("Figure 5 — user ratings (baseline vs user-specific USTA)", render_figure5(rows, summary))

    # Shape checks against the paper: every rating is on the 1-5 scale, USTA's
    # mean rating is at least the baseline's, more users prefer USTA than the
    # baseline, and several users see no difference at all.
    assert all(1 <= row.baseline_rating <= 5 for row in rows)
    assert all(1 <= row.usta_rating <= 5 for row in rows)
    assert summary["mean_usta_rating"] >= summary["mean_baseline_rating"]
    assert summary["prefer_usta"] >= summary["prefer_baseline"]
    if bench_scale >= 0.8:
        # Full-duration shape checks: several users see no difference and the
        # means land in the same region the paper reports (4.0 / 4.3).
        assert summary["no_difference"] >= 2
        assert abs(summary["mean_baseline_rating"] - PAPER_FIG5_MEAN_RATINGS["baseline"]) <= 1.0
        assert abs(summary["mean_usta_rating"] - PAPER_FIG5_MEAN_RATINGS["usta"]) <= 1.0
