"""Ablation — USTA prediction period.

The paper runs the prediction every 3 seconds and notes the overhead could be
reduced by predicting less often.  This ablation sweeps the prediction period
on the Skype workload and reports the trade-off: longer periods mean fewer
predictions (lower overhead) but a slower reaction to temperature ramps.
"""

from conftest import print_section

from repro.analysis.report import format_table
from repro.sim.experiments import run_workload
from repro.workloads import build_benchmark

PERIODS_S = (1.0, 3.0, 10.0, 30.0)


def bench_ablation_prediction_period(benchmark, context, bench_scale):
    """Sweep USTA's prediction period on the Skype workload."""
    duration_s = 30 * 60 * bench_scale
    trace = build_benchmark("skype", seed=0, duration_s=duration_s)

    def run():
        results = {}
        for period in PERIODS_S:
            usta = context.usta_for_limit(37.0, prediction_period_s=period)
            results[period] = (
                run_workload(trace, governor="ondemand", thermal_manager=usta, seed=0),
                usta.prediction_count,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for period, (result, predictions) in sorted(results.items()):
        rows.append(
            [
                f"{period:.0f}",
                f"{result.max_skin_temp_c:.1f}",
                f"{result.percent_time_over(37.0):.1f}",
                f"{result.average_frequency_ghz:.2f}",
                str(predictions),
            ]
        )
    print_section(
        "Ablation — prediction period (Skype, USTA @ 37 C)",
        format_table(
            ["period (s)", "max skin (C)", "% over 37 C", "avg freq (GHz)", "predictions"], rows
        ),
    )

    # More frequent prediction means more predictions were made...
    counts = [results[p][1] for p in sorted(results)]
    assert counts == sorted(counts, reverse=True)
    # ...and every period still keeps the peak below the uncontrolled baseline.
    baseline = run_workload(trace, governor="ondemand", seed=0)
    for period, (result, _) in results.items():
        assert result.max_skin_temp_c <= baseline.max_skin_temp_c + 0.3, period
