"""§III.A — effect of human touch on the exterior temperature.

The paper checks four conditions (device off / untouched, off / held, active /
untouched, active / held) and observes that holding the phone does not change
the exterior temperature significantly, especially while it is active.  This
benchmark reproduces the four-condition comparison on the simulated device.
"""

from conftest import print_section

from repro.analysis.report import format_table
from repro.sim.experiments import run_workload
from repro.workloads import WorkloadSample, WorkloadTrace


def _condition_trace(active: bool, touching: bool, duration_s: float) -> WorkloadTrace:
    demand = 0.95 if active else 0.0
    sample = WorkloadSample(
        cpu_demand=demand,
        gpu_activity=0.3 if active else 0.0,
        screen_on=active,
        brightness=0.85 if active else 0.0,
        touching=touching,
    )
    name = f"{'active' if active else 'off'}-{'held' if touching else 'untouched'}"
    return WorkloadTrace.constant(name, duration_s, sample)


def bench_touch_ablation(benchmark, bench_scale):
    """Compare skin temperature with and without hand contact, idle and active."""
    duration_s = 30 * 60 * bench_scale

    def run():
        results = {}
        for active in (False, True):
            for touching in (False, True):
                trace = _condition_trace(active, touching, duration_s)
                results[(active, touching)] = run_workload(trace, governor="ondemand", seed=0)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (active, touching), result in results.items():
        rows.append(
            [
                "active" if active else "off",
                "held" if touching else "untouched",
                f"{result.max_skin_temp_c:.1f}",
                f"{result.max_screen_temp_c:.1f}",
            ]
        )
    print_section(
        "Human-touch ablation (paper section III.A)",
        format_table(["device", "contact", "max skin (C)", "max screen (C)"], rows),
    )

    idle_delta = abs(
        results[(False, True)].max_skin_temp_c - results[(False, False)].max_skin_temp_c
    )
    active_delta = abs(
        results[(True, True)].max_skin_temp_c - results[(True, False)].max_skin_temp_c
    )
    # The paper's observation: touch does not alter the exterior temperature
    # significantly, especially when the phone is actively used.
    assert active_delta < 2.5
    # An idle phone warms toward hand temperature but the shift is bounded too.
    assert idle_delta < 6.0
    # The active phone is much hotter than the idle one regardless of touch.
    assert results[(True, False)].max_skin_temp_c > results[(False, False)].max_skin_temp_c + 5.0
