"""Figure 3 — prediction error of the four candidate learners.

Reproduces the 10-fold cross-validation comparison of linear regression, the
multilayer perceptron, M5P and REPTree on the pooled global dataset, for both
the skin and the screen temperature targets, plus the 1 °C-deadband variant.
"""

from conftest import print_section

from repro.analysis import PAPER_FIG3_ERROR_RATES, figure3_prediction_errors, render_figure3


def bench_fig3_prediction_error(benchmark, context):
    """Regenerate Figure 3 (cross-validated error rates of the four learners)."""

    def run():
        return figure3_prediction_errors(context, folds=10)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = render_figure3(rows)
    body += "\npaper reference: REPTree 0.95% / 0.86%, M5P 0.96% / 0.89% (skin / screen)"
    print_section("Figure 3 — average prediction error (10-fold cross-validation)", body)

    by_model = {row.model_name: row for row in rows}
    assert set(by_model) == set(PAPER_FIG3_ERROR_RATES)

    # Shape checks from the paper: the tree learners are at least as accurate
    # as linear regression, and every learner lands in the "highly accurate"
    # regime (low single-digit percent error).
    for tree in ("reptree", "m5p"):
        assert by_model[tree].skin_error_rate_pct <= by_model["linear_regression"].skin_error_rate_pct + 0.05
        assert by_model[tree].screen_error_rate_pct <= by_model["linear_regression"].screen_error_rate_pct + 0.05
    for row in rows:
        assert row.skin_error_rate_pct < 5.0
        assert row.screen_error_rate_pct < 5.0
        # The deadband variant can only lower the reported error.
        assert row.skin_error_rate_deadband_pct <= row.skin_error_rate_pct + 1e-9
        assert row.screen_error_rate_deadband_pct <= row.screen_error_rate_pct + 1e-9
