"""Table 1 — max screen/skin temperature and average frequency, baseline vs USTA.

Reproduces the paper's Table 1: all thirteen benchmarks are replayed under the
baseline ondemand governor and under USTA configured for the default user's
37 °C comfort limit.  The printed table lists the reproduced values with the
paper's skin-temperature columns alongside.
"""

from conftest import print_section

from repro.analysis import render_table1, reproduce_table1
from repro.analysis.paper_data import PAPER_DEFAULT_LIMIT_C


def bench_table1(benchmark, context, bench_scale):
    """Regenerate Table 1 (one full pass over the thirteen benchmarks)."""

    def run():
        return reproduce_table1(context, duration_scale=bench_scale)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section(
        "Table 1 — maximum temperatures and average frequency (baseline vs USTA @ 37 C)",
        render_table1(rows),
    )

    # Shape checks mirroring the paper's claim: wherever the baseline peak
    # comes within 2 C of the limit, USTA reduces the peak skin temperature.
    hot_rows = [row for row in rows if row.usta_should_act]
    assert hot_rows, "at least some benchmarks must stress the default limit"
    for row in hot_rows:
        assert row.usta_max_skin_c <= row.baseline_max_skin_c + 0.2, row.benchmark

    # USTA never *raises* the peak above the baseline on the remaining
    # benchmarks either (it simply stays out of the way).
    for row in rows:
        assert row.usta_max_skin_c <= row.baseline_max_skin_c + 0.5, row.benchmark

    # The hottest baseline benchmarks exceed the default user's limit, which is
    # what motivates USTA in the first place.
    assert max(row.baseline_max_skin_c for row in rows) > PAPER_DEFAULT_LIMIT_C
