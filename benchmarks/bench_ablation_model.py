"""Ablation — which learner drives USTA.

The paper deploys REPTree because it trains fast and predicts cheaply, noting
M5P is marginally more accurate.  This ablation puts each of the four learners
in USTA's loop and compares the resulting thermal control on the Skype
workload, plus the time it takes to train each model (the paper's reason for
choosing REPTree).
"""

import time

from conftest import print_section

from repro.analysis.report import format_table
from repro.core.pipeline import PAPER_MODEL_NAMES, train_runtime_predictor
from repro.core.usta import USTAController
from repro.sim.experiments import run_workload
from repro.workloads import build_benchmark


def bench_ablation_predictor_model(benchmark, context, bench_scale):
    """Swap the predictor family inside USTA and compare control quality."""
    duration_s = 30 * 60 * bench_scale
    trace = build_benchmark("skype", seed=0, duration_s=duration_s)

    def run():
        results = {}
        for model_name in PAPER_MODEL_NAMES:
            start = time.perf_counter()
            predictor = train_runtime_predictor(
                context.training_data, model_name=model_name, seed=context.seed
            )
            train_time = time.perf_counter() - start
            usta = USTAController(predictor=predictor, skin_limit_c=37.0)
            result = run_workload(trace, governor="ondemand", thermal_manager=usta, seed=0)
            results[model_name] = (result, train_time)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = run_workload(trace, governor="ondemand", seed=0)

    rows = [
        [
            name,
            f"{result.max_skin_temp_c:.1f}",
            f"{result.percent_time_over(37.0):.1f}",
            f"{result.average_frequency_ghz:.2f}",
            f"{train_time:.2f}",
        ]
        for name, (result, train_time) in results.items()
    ]
    rows.append(
        ["baseline (no USTA)", f"{baseline.max_skin_temp_c:.1f}", f"{baseline.percent_time_over(37.0):.1f}",
         f"{baseline.average_frequency_ghz:.2f}", "-"]
    )
    print_section(
        "Ablation — predictor family inside USTA (Skype, limit 37 C)",
        format_table(["model", "max skin (C)", "% over 37 C", "avg freq (GHz)", "train time (s)"], rows),
    )

    # No learner makes the device run hotter than the baseline.
    for name, (result, _) in results.items():
        assert result.max_skin_temp_c <= baseline.max_skin_temp_c + 0.2, name
    if bench_scale >= 0.8:
        # Every learner is accurate enough for USTA to beat the baseline peak.
        for name, (result, _) in results.items():
            assert result.max_skin_temp_c < baseline.max_skin_temp_c, name
    # The paper's deployment argument: REPTree trains faster than the MLP.
    assert results["reptree"][1] < results["multilayer_perceptron"][1]
