"""Figure 4 — skin/screen temperature traces during the Skype call.

Reproduces the paper's headline comparison: the half-hour Skype video call
under the baseline ondemand governor and under USTA with the default 37 °C
limit.  The paper reports a 4.1 °C lower peak skin temperature and a 34 % lower
average frequency under USTA.
"""

from conftest import print_section

from repro.analysis import (
    PAPER_DEFAULT_LIMIT_C,
    PAPER_FIG4_PEAK_REDUCTION_C,
    figure4_skype_traces,
    render_figure4,
)


def bench_fig4_skype_traces(benchmark, context, bench_scale):
    """Regenerate Figure 4 (baseline vs USTA temperature traces)."""
    duration_s = 30 * 60 * bench_scale

    def run():
        return figure4_skype_traces(context, duration_s=duration_s)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section(
        "Figure 4 — Skype video call temperature traces (baseline vs USTA @ 37 C)",
        render_figure4(series, every_s=max(60.0, duration_s / 12)),
    )

    # USTA never runs hotter than the baseline, at any scale.
    assert series.usta.max_skin_temp_c <= series.baseline.max_skin_temp_c + 0.2
    if bench_scale >= 0.8:
        # Full-duration shape checks: the baseline exceeds the default user's
        # comfort limit, USTA cuts the peak by a few degrees (the paper
        # reports 4.1 C) while trading away average frequency.
        assert series.baseline.max_skin_temp_c > PAPER_DEFAULT_LIMIT_C
        assert series.peak_skin_reduction_c > 1.0
        assert series.peak_skin_reduction_c < PAPER_FIG4_PEAK_REDUCTION_C + 3.0
        assert series.usta.average_frequency_ghz < series.baseline.average_frequency_ghz
        assert 0.1 < series.average_frequency_reduction_fraction < 0.7
