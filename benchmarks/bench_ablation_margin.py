"""Ablation — USTA activation margin and policy aggressiveness.

The paper activates USTA 2 °C below the user's limit and steps the frequency
cap down in three stages.  This ablation compares the paper's policy with a
gentler and a more aggressive variant, plus a sweep of the activation margin,
on the Skype workload with the default 37 °C limit.
"""

from conftest import print_section

from repro.analysis.report import format_table
from repro.core.policy import ThrottlePolicy
from repro.sim.experiments import run_workload
from repro.workloads import build_benchmark

MARGINS_C = (1.0, 2.0, 3.0, 4.0)


def bench_ablation_policy_and_margin(benchmark, context, bench_scale):
    """Compare throttle policies and activation margins on the Skype workload."""
    duration_s = 30 * 60 * bench_scale
    trace = build_benchmark("skype", seed=0, duration_s=duration_s)

    policies = {
        "paper (2.0 C)": ThrottlePolicy.paper_default(),
        "gentle (1.0 C)": ThrottlePolicy.gentle(),
        "aggressive (3.0 C)": ThrottlePolicy.aggressive(),
    }
    policies.update(
        {f"margin {margin:.0f} C": ThrottlePolicy.with_activation_margin(margin) for margin in MARGINS_C}
    )

    def run():
        results = {"baseline (no USTA)": run_workload(trace, governor="ondemand", seed=0)}
        for label, policy in policies.items():
            usta = context.usta_for_limit(37.0, policy=policy)
            results[label] = run_workload(trace, governor="ondemand", thermal_manager=usta, seed=0)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            label,
            f"{result.max_skin_temp_c:.1f}",
            f"{result.percent_time_over(37.0):.1f}",
            f"{result.average_frequency_ghz:.2f}",
            f"{result.throughput_ratio:.2f}",
        ]
        for label, result in results.items()
    ]
    print_section(
        "Ablation — throttle policy / activation margin (Skype, limit 37 C)",
        format_table(["policy", "max skin (C)", "% over 37 C", "avg freq (GHz)", "throughput"], rows),
    )

    baseline = results["baseline (no USTA)"]
    paper = results["paper (2.0 C)"]
    aggressive = results["aggressive (3.0 C)"]
    gentle = results["gentle (1.0 C)"]

    # Every USTA variant improves on the uncontrolled baseline peak.
    for label, result in results.items():
        if label != "baseline (no USTA)":
            assert result.max_skin_temp_c <= baseline.max_skin_temp_c + 0.2, label
    # Earlier activation throttles at least as hard (lower or equal average frequency).
    assert aggressive.average_frequency_ghz <= paper.average_frequency_ghz + 0.05
    assert paper.average_frequency_ghz <= gentle.average_frequency_ghz + 0.25
    # The gentler policy trades a hotter peak for more preserved performance.
    assert gentle.throughput_ratio >= aggressive.throughput_ratio - 0.05
