# Developer checks for the USTA reproduction.
#
# `make check` is what CI runs on every PR: the tier-1 test suite plus a
# smoke run of the batched experiment runtime (table1 through a 2-worker
# process pool at a tiny duration scale) and of the online policy-session
# driver (`repro serve --smoke`).  `make lint` needs ruff on the PATH.
#
# The coverage gate (--cov=repro --cov-fail-under=80) switches on
# automatically when pytest-cov is installed (CI installs it); without it the
# suite runs plain so laptops with the bare toolchain keep working.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Recursively expanded (=) so the probe only runs for targets that use it.
COV_FLAGS = $(shell $(PYTHON) -c "import importlib.util as u; print('--cov=repro --cov-fail-under=80' if u.find_spec('pytest_cov') else '')")

.PHONY: check test coverage smoke serve-smoke stream-smoke bench-smoke fleet-smoke serve-load-smoke hal-smoke golden lint bench-baseline

check: test smoke serve-smoke stream-smoke bench-smoke fleet-smoke serve-load-smoke hal-smoke

test:
	$(PYTHON) -m pytest -x -q $(COV_FLAGS)

coverage:  # hard-requires pytest-cov (what CI effectively runs via `test`)
	$(PYTHON) -m pytest -q --cov=repro --cov-fail-under=80

golden:
	$(PYTHON) -m repro golden

smoke:
	$(PYTHON) -m repro table1 --scale 0.05 --jobs 2

serve-smoke:
	$(PYTHON) -m repro serve --smoke

# Exercises the crash-safe streaming path end to end: a tiny sweep streamed
# to sharded JSONL, then the same sweep again with --resume (which must skip
# every persisted cell and rebuild the table from the shards).
stream-smoke:
	rm -rf .stream-smoke
	$(PYTHON) -m repro sweep --scale 0.02 --model linear_regression --stream-to .stream-smoke
	$(PYTHON) -m repro sweep --scale 0.02 --model linear_regression --stream-to .stream-smoke --resume
	rm -rf .stream-smoke

# Perf gate for the heterogeneous vectorized engine: a scaled-down
# mixed-trace sweep must run bit-identical to — and clearly faster than —
# sequential execution, and the managed (USTA + comfort-loop) variant must
# beat the same batch with per-member scalar managers (generous thresholds;
# they catch scalar-fallback regressions, not machine noise).
bench-smoke:
	$(PYTHON) benchmarks/bench_batch_runtime.py --smoke

# Fault-tolerance gate for the fleet executor: a tiny 2-worker distributed
# sweep with one worker SIGKILLed mid-run must still finish, the merged store
# must be byte-identical to the single-process streaming run, and a resumed
# coordinator must answer the whole plan from disk.
fleet-smoke:
	$(PYTHON) -m repro.fleet.smoke

# Load gate for the persistent serving front end: request-level parity
# between the resident session plane and the plane-disabled scalar pool
# (bit-identical decision wire), a >=1.5x plane-over-scalar throughput floor,
# in-process feed throughput and single-feed latency over thousands of
# sessions, a socket RTT check, and 1-vs-2 worker fleet parity (generous
# thresholds; catches per-feed retrain-style collapses, not machine noise).
serve-load-smoke:
	$(PYTHON) benchmarks/bench_serve_load.py --smoke

# Real-device ingestion gate: parse the committed dumpsys-thermal fixture
# (torn entries, placeholder channels, cached-vs-current merge), replay it
# through `serve --hal-trace` with the trip-point example policy, and score
# USTA vs. trip-point on the same trace via `hal-compare`.
hal-smoke:
	$(PYTHON) -m repro.telemetry.smoke

lint:
	$(PYTHON) -m ruff check .

bench-baseline:
	$(PYTHON) benchmarks/bench_batch_runtime.py
