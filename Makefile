# Developer checks for the USTA reproduction.
#
# `make check` is what CI runs on every PR: the tier-1 test suite plus a
# smoke run of the batched experiment runtime (table1 through a 2-worker
# process pool at a tiny duration scale) and of the online policy-session
# driver (`repro serve --smoke`).  `make lint` needs ruff on the PATH.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test smoke serve-smoke lint bench-baseline

check: test smoke serve-smoke

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) -m repro table1 --scale 0.05 --jobs 2

serve-smoke:
	$(PYTHON) -m repro serve --smoke

lint:
	$(PYTHON) -m ruff check .

bench-baseline:
	$(PYTHON) benchmarks/bench_batch_runtime.py
