"""Setuptools shim for environments without the `wheel` package.

This file enables the legacy ``pip install -e . --no-use-pep517`` /
``python setup.py develop`` path on machines where PEP 517 editable installs
are unavailable offline, and records the optional dependency sets.

Install the dev extras to run the full check suite (property-based tests and
the coverage gate)::

    pip install -e .[dev]
"""

from setuptools import find_packages, setup

setup(
    name="repro-usta",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy", "scipy"],
    extras_require={
        # What `make check` wants: hypothesis drives the property suites
        # (tests/test_properties*.py) and pytest-cov enables the coverage
        # gate (--cov=repro --cov-fail-under=80) that CI enforces.
        "dev": [
            "pytest",
            "pytest-benchmark",
            "pytest-cov",
            "hypothesis",
            "ruff",
        ],
    },
)
