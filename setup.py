"""Setuptools shim for environments without the `wheel` package.

All project metadata lives in ``pyproject.toml``; this file only enables the
legacy ``pip install -e . --no-use-pep517`` / ``python setup.py develop`` path
on machines where PEP 517 editable installs are unavailable offline.
"""

from setuptools import setup

setup()
