"""Fleet execution: a distributed sweep with fault injection, then serving.

The streaming runtime bounds a sweep's *memory*; the fleet subsystem bounds
its *blast radius*.  This example walks both halves of ``repro.fleet``:

1. run a population sweep through a 2-worker :class:`FleetCoordinator` —
   each worker is its own process streaming into a private shard directory,
   and work units are dealt dynamically to whichever worker is idle;
2. SIGKILL one worker mid-run (via the coordinator's event hook, exactly
   what ``make fleet-smoke`` does): the coordinator harvests what the dead
   worker committed to disk, requeues only the missing cells, and the merged
   destination store still comes out byte-identical to a single-process run;
3. open a persistent :class:`PolicyService` over a :class:`SessionStateStore`
   and show the paper's per-user premise made durable: a user whose comfort
   tracker converged in one session reopens *at* the converged limit in the
   next — adaptation continues, it never restarts.

Run with::

    python examples/fleet_sweep.py

The command-line equivalents are::

    repro-usta sweep --scale 0.1 --fleet 2 --stream-to out/
    repro-usta serve --listen 127.0.0.1:7071 --state-dir state/
"""

import tempfile
from pathlib import Path

from repro.fleet import FleetCoordinator, PolicyService, SessionStateStore, stores_byte_identical
from repro.fleet.smoke import build_smoke_plan
from repro.runtime import BatchRunner, StreamingResultStore
from repro.users.population import paper_population


def fleet_half(root: Path) -> None:
    plan = build_smoke_plan(repeat=2, duration_s=30.0)
    fleet_dir = root / "fleet"

    # Fault injection: as soon as the pipeline is warm, SIGKILL a worker
    # that is NOT the one currently being assigned to.
    state = {"killed": None}

    def hook(event: str, info: dict) -> None:
        if event == "assign" and state["killed"] is None and info["unit"] >= 2:
            victims = [
                w for w in coordinator.live_worker_ids() if w != info["worker_id"]
            ]
            if victims:
                coordinator.kill_worker(victims[0])
                state["killed"] = victims[0]
                print(f"   killed {victims[0]} mid-run")

    coordinator = FleetCoordinator(plan, fleet_dir, workers=2, unit_size=2, on_event=hook)
    report = coordinator.run()
    print(
        f"   {report.executed}/{report.n_cells} cells, {report.worker_deaths} "
        f"death(s), {report.reassigned_cells} cell(s) reassigned, "
        f"{report.merge.n_shards} merged shard(s)"
    )

    print("2. byte-parity against a single-process streaming run ...")
    ref_dir = root / "reference"
    ref = StreamingResultStore(ref_dir)
    BatchRunner.for_jobs(None).run_stream(plan, ref)
    ref.close()
    diff = stores_byte_identical(fleet_dir, ref_dir)
    print(f"   identical: {diff is None}" + (f" ({diff})" if diff else ""))


def serving_half(root: Path) -> None:
    profile = next(iter(paper_population()))
    state_dir = root / "state"

    def open_service():
        from repro.api.specs import AdapterSpec, ManagerSpec, PolicySpec, PredictorSpec
        from repro.fleet.smoke import SMOKE_RECIPE

        policy = PolicySpec(
            manager=ManagerSpec(
                "usta", predictor=PredictorSpec("trained", params=SMOKE_RECIPE)
            ),
            adapter=AdapterSpec("quantile_tracker"),
        )
        return PolicyService(
            policy,
            profiles={p.user_id: p for p in paper_population()},
            state_store=SessionStateStore(state_dir),
        )

    service = open_service()
    opened = service.open("first-visit", profile.user_id)
    print(f"   {profile.user_id} cold start at {opened['limit_c']:.2f} °C")
    for i in range(30):  # thirty discomfort reports converge the tracker
        service.feed(
            "first-visit",
            {
                "time_s": i * 3.0,
                "utilization": 0.8,
                "frequency_khz": 1_512_000.0,
                "sensors": {"cpu": 45.0, "battery": 42.0},
            },
            feedback=[{"time_s": i * 3.0, "kind": "discomfort", "skin_temp_c": 35.0}],
        )
    converged = service.pool.get("first-visit").current_limit_c
    service.shutdown()  # persists state, like SIGTERM on `serve --listen`
    print(f"   converged to {converged:.2f} °C; service shut down")

    service = open_service()  # a new process lifetime
    reopened = service.open("second-visit", profile.user_id)
    print(
        f"   {profile.user_id} returns: warm start={reopened['resumed']}, "
        f"opens at {reopened['limit_c']:.2f} °C (no re-convergence)"
    )
    service.shutdown()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        import os

        from repro.runtime.artifacts import ARTIFACT_ENV_VAR

        os.environ.setdefault(ARTIFACT_ENV_VAR, str(root / "artifacts"))

        print("1. distributed sweep, one worker killed mid-run ...")
        fleet_half(root)
        print("3. persistent serving: converge, shut down, warm-start ...")
        serving_half(root)


if __name__ == "__main__":
    main()
