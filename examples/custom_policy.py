"""Extending USTA: custom throttle policies and per-user configuration.

The paper's policy activates 2 °C below the limit and steps the frequency cap
down in three stages.  This example shows how to

* define a custom :class:`~repro.core.ThrottlePolicy` (different margins and
  step sizes),
* configure USTA for an individual user instead of the default 37 °C limit,
* and compare the resulting temperature / performance trade-off against both
  the stock ondemand governor and the paper's policy.

Run with::

    python examples/custom_policy.py
    python examples/custom_policy.py --user f --scale 0.5
"""

import argparse

from repro.analysis import ReproductionContext
from repro.core import ThrottlePolicy, USTAController
from repro.core.policy import ThrottleStep
from repro.sim import run_workload
from repro.workloads import build_benchmark


def build_custom_policy() -> ThrottlePolicy:
    """A wider, smoother policy: activate 3 °C out, five graded steps."""
    return ThrottlePolicy(
        steps=(
            ThrottleStep(margin_above_c=3.0, levels_below_max=1),
            ThrottleStep(margin_above_c=2.0, levels_below_max=3),
            ThrottleStep(margin_above_c=1.0, levels_below_max=5),
            ThrottleStep(margin_above_c=0.5, levels_below_max=8),
            ThrottleStep(margin_above_c=0.0, levels_below_max=None),
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--user", default="default",
                        help="participant id (a-j) or 'default' for the 37 C average user")
    parser.add_argument("--benchmark", default="skype", help="benchmark workload to replay")
    parser.add_argument("--scale", type=float, default=1.0, help="duration scale")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("building the reproduction context ...")
    context = ReproductionContext.build(seed=args.seed, duration_scale=args.scale)
    profile = context.population[args.user]
    print(f"  user {profile.user_id!r}: skin limit {profile.skin_limit_c:.1f} C\n")

    trace = build_benchmark(args.benchmark, seed=args.seed)
    if args.scale != 1.0:
        trace = trace.truncated(trace.duration_s * args.scale)

    configurations = {
        "ondemand (baseline)": None,
        "USTA, paper policy": USTAController.for_user(context.predictor, profile),
        "USTA, custom policy": USTAController.for_user(
            context.predictor, profile, policy=build_custom_policy()
        ),
    }

    print(f"{'configuration':26s}{'max skin':>10s}{'% over':>9s}{'avg GHz':>9s}{'throughput':>12s}")
    for label, manager in configurations.items():
        result = run_workload(trace, governor="ondemand", thermal_manager=manager, seed=args.seed)
        print(f"{label:26s}{result.max_skin_temp_c:10.1f}"
              f"{result.percent_time_over(profile.skin_limit_c):9.1f}"
              f"{result.average_frequency_ghz:9.2f}{result.throughput_ratio:12.2f}")

    print("\nThe custom policy starts throttling earlier and in finer steps, trading a")
    print("little more average frequency for a smoother approach to the comfort limit.")


if __name__ == "__main__":
    main()
