"""Offline predictor training workflow (the paper's §III.A framework).

Collects the system-level logs from the benchmark suite, evaluates the four
candidate learners with 10-fold cross-validation (Figure 3), trains the model
chosen for deployment, prints the top of the learned tree and measures the
run-time prediction overhead (the paper's §IV.A numbers).

Run with::

    python examples/train_predictor.py
    python examples/train_predictor.py --model m5p --scale 0.25
"""

import argparse

from repro.core import (
    PredictionFeatures,
    collect_training_data,
    evaluate_prediction_models,
    train_runtime_predictor,
)
from repro.ml.reptree import RepTree


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="reptree",
                        help="model to deploy (reptree, m5p, linear_regression, multilayer_perceptron)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="benchmark duration scale for data collection")
    parser.add_argument("--folds", type=int, default=10, help="cross-validation folds")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("collecting training data from the thirteen benchmarks ...")
    data = collect_training_data(seed=args.seed, duration_scale=args.scale)
    print(f"  {data.num_records} log records "
          f"(one every 3 s across {len(data.benchmarks)} benchmarks)\n")

    print(f"evaluating the four candidate learners ({args.folds}-fold cross-validation) ...")
    results = evaluate_prediction_models(data, folds=args.folds, seed=args.seed)
    print(f"  {'model':24s}{'skin err %':>12s}{'screen err %':>14s}")
    for name, by_target in results.items():
        print(f"  {name:24s}{by_target['skin'].error_rate_pct:12.2f}"
              f"{by_target['screen'].error_rate_pct:14.2f}")
    print("  (paper: REPTree 0.95 / 0.86, M5P 0.96 / 0.89, LR and MLP clearly worse)\n")

    print(f"training the deployed predictor ({args.model}) on the full dataset ...")
    predictor = train_runtime_predictor(data, model_name=args.model, seed=args.seed)
    if isinstance(predictor.skin_model, RepTree):
        print("  top of the learned skin-temperature tree:")
        for line in predictor.skin_model.describe(max_depth=3).splitlines():
            print(f"    {line}")

    features = [
        PredictionFeatures(cpu_temp_c=45.0 + i, battery_temp_c=35.0 + 0.5 * i,
                           utilization=0.6, frequency_khz=1_134_000.0)
        for i in range(10)
    ]
    overhead = predictor.measure_overhead(features, repeats=20)
    print()
    print(f"per-window prediction latency: skin {overhead['skin_latency_s'] * 1e3:.3f} ms, "
          f"skin+screen {overhead['total_latency_s'] * 1e3:.3f} ms "
          f"(paper: 5.603 ms / 12.383 ms on the Nexus 4)")


if __name__ == "__main__":
    main()
