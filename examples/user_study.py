"""Reproduce the two user studies of the paper.

* **Comfort-threshold study (Figure 1):** the ten participants hold the phone
  while the AnTuTu Tester stress application runs; each reports the moment the
  skin temperature becomes unacceptable.
* **Per-user exposure (Figure 2):** USTA is configured with each participant's
  own limit (plus the 37 °C "default user") and a half-hour Skype call is
  replayed; the study reports how much of the call is still spent above each
  limit.
* **Blind preference study (Figure 5):** each participant rates a baseline
  session and a USTA session from 1 to 5 and states a preference.

Run with::

    python examples/user_study.py
    python examples/user_study.py --scale 0.25      # quicker, shortened runs
"""

import argparse

from repro.analysis import (
    ReproductionContext,
    figure1_user_thresholds,
    figure2_time_over_threshold,
    figure5_user_ratings,
    render_figure1,
    render_figure2,
    render_figure5,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="duration scale for every run (1.0 = paper-length sessions)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("building the reproduction context ...")
    context = ReproductionContext.build(seed=args.seed, duration_scale=args.scale)
    population = context.population
    print(f"  population: {len(population)} participants, skin limits "
          f"{population.min_skin_limit_c:.1f}-{population.max_skin_limit_c:.1f} C "
          f"(mean {population.mean_skin_limit_c:.1f} C)\n")

    print("Figure 1 — comfort-threshold study (AnTuTu Tester, baseline governor)")
    rows1 = figure1_user_thresholds(context, duration_s=45 * 60 * args.scale)
    print(render_figure1(rows1))
    print()

    print("Figure 2 — % of the Skype call above each user's limit (USTA per user)")
    rows2 = figure2_time_over_threshold(context, duration_s=30 * 60 * args.scale)
    print(render_figure2(rows2))
    print()

    print("Figure 5 — blind preference study (baseline vs user-specific USTA)")
    rows5, summary = figure5_user_ratings(context, duration_s=30 * 60 * args.scale)
    print(render_figure5(rows5, summary))


if __name__ == "__main__":
    main()
