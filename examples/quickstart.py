"""Quickstart: train the skin-temperature predictor and run USTA on a video call.

This is the shortest end-to-end tour of the library:

1. collect predictor training data by replaying (shortened) benchmarks on the
   simulated, thermistor-instrumented Nexus 4;
2. train the REPTree skin/screen temperature predictor (the model the paper
   deploys);
3. replay a Skype video call under the stock ondemand governor and under USTA
   with the default 37 °C comfort limit, and compare the outcomes.

Run with::

    python examples/quickstart.py
"""

from repro.core import build_usta_controller, collect_training_data, train_runtime_predictor
from repro.sim import run_workload
from repro.workloads import build_benchmark

# Scale the benchmark durations down so the example finishes in a few seconds.
# Use DURATION_SCALE = 1.0 to replay the paper's full-length runs.
DURATION_SCALE = 0.5
SKIN_LIMIT_C = 37.0  # the paper's "default user" (average of the ten participants)


def main() -> None:
    print("1. collecting predictor training data from the benchmark suite ...")
    data = collect_training_data(duration_scale=DURATION_SCALE, seed=0)
    print(f"   logged {data.num_records} samples "
          f"(features: CPU temp, battery temp, utilization, frequency)")

    print("2. training the REPTree skin/screen temperature predictor ...")
    predictor = train_runtime_predictor(data, model_name="reptree", seed=0)
    print(f"   deployed model: {predictor.model_name}")

    print("3. replaying a Skype video call under both DVFS configurations ...")
    trace = build_benchmark("skype", seed=0, duration_s=30 * 60 * DURATION_SCALE)
    baseline = run_workload(trace, governor="ondemand", seed=0)
    usta = build_usta_controller(predictor, skin_limit_c=SKIN_LIMIT_C)
    managed = run_workload(trace, governor="ondemand", thermal_manager=usta, seed=0)

    print()
    print(f"{'':24s}{'baseline':>12s}{'USTA':>12s}")
    print(f"{'peak skin temp (C)':24s}{baseline.max_skin_temp_c:12.1f}{managed.max_skin_temp_c:12.1f}")
    print(f"{'peak screen temp (C)':24s}{baseline.max_screen_temp_c:12.1f}{managed.max_screen_temp_c:12.1f}")
    print(f"{'average freq (GHz)':24s}{baseline.average_frequency_ghz:12.2f}{managed.average_frequency_ghz:12.2f}")
    print(f"{'% time over 37 C':24s}{baseline.percent_time_over(SKIN_LIMIT_C):12.1f}"
          f"{managed.percent_time_over(SKIN_LIMIT_C):12.1f}")
    print(f"{'throughput ratio':24s}{baseline.throughput_ratio:12.2f}{managed.throughput_ratio:12.2f}")
    print()
    reduction = baseline.max_skin_temp_c - managed.max_skin_temp_c
    print(f"USTA reduced the peak skin temperature by {reduction:.1f} C "
          f"(paper, full 30-minute call: 4.1 C) while the governor spent "
          f"{managed.usta_active_fraction * 100:.0f}% of the run with a frequency cap installed.")


if __name__ == "__main__":
    main()
