"""Streaming sweeps: bounded-memory population runs with crash-safe resume.

The batch runtime normally collects every cell's full step-record stream in
memory.  This example shows the streaming alternative for sweeps too large
for that:

1. declare a population sweep as an :class:`ExperimentPlan` whose cells carry
   a declarative policy with a ``trained`` predictor *recipe* — the trained
   model resolves through the content-addressed artifact cache, so re-running
   the example (or fanning out over ``--jobs`` workers) never retrains;
2. stream the plan into a sharded JSONL :class:`StreamingResultStore`: each
   completed cell is appended and dropped, and a :class:`SummarySink` teed
   next to it folds the records into O(1) running summaries for the report;
3. interrupt and resume: re-opening the directory recovers any half-written
   final line and re-runs exactly the missing cells.

Run with::

    python examples/streaming_sweep.py

The command-line equivalent of all of this is::

    repro-usta sweep --scale 0.1 --stream-to out/        # crash whenever
    repro-usta sweep --scale 0.1 --stream-to out/ --resume
"""

import tempfile
from pathlib import Path

from repro.analysis.streaming import SummarySink
from repro.api.specs import AdapterSpec, ManagerSpec, PolicySpec, PredictorSpec
from repro.runtime import (
    BatchRunner,
    ExperimentCell,
    ExperimentPlan,
    StreamingResultStore,
    TeeSink,
)
from repro.users.adaptation import WARM_START_TEMPS
from repro.users.population import paper_population
from repro.workloads import build_benchmark

#: A deterministic predictor recipe.  The first run trains it once and caches
#: the artifact by content key (override the location with REPRO_ARTIFACT_DIR);
#: every later run — this process, a resumed run, pool workers — loads it.
PREDICTOR = PredictorSpec(
    kind="trained",
    params={"model": "linear_regression", "duration_scale": 0.05, "benchmarks": ["skype"]},
)

POLICY = PolicySpec(
    manager=ManagerSpec("usta", params={"skin_limit_c": 37.0}, predictor=PREDICTOR),
    adapter=AdapterSpec("quantile_tracker", feedback={"report_period_s": 9.0}),
)


def build_plan() -> ExperimentPlan:
    """One adaptive-USTA cell per study participant, sharing one Skype trace."""
    trace = build_benchmark("skype", seed=0, duration_s=180.0)
    plan = ExperimentPlan()
    for profile in paper_population():
        plan.add(
            ExperimentCell(
                cell_id=profile.user_id,
                trace=trace,
                policy=POLICY.for_user(profile),
                seed=0,
                initial_temps=WARM_START_TEMPS,
                metadata={"user_id": profile.user_id},
            )
        )
    return plan


def stream_once(directory: Path, plan: ExperimentPlan) -> None:
    store = StreamingResultStore(directory)
    if store.recovered_tail:
        print(f"   {store.recovered_tail}")
    summaries = SummarySink()
    executed = BatchRunner.for_jobs(None).run_stream(
        plan, TeeSink(store, summaries), skip=store.completed_cell_ids
    )
    store.close()
    print(f"   executed {executed} cell(s), skipped {len(plan) - executed} already on disk")
    for entry in summaries.entries:
        summary = entry.summary
        print(
            f"   {entry.cell.cell_id}: peak skin {summary.max_skin_temp_c:.2f} °C, "
            f"end limit {summary.final_comfort_limit_c:.2f} °C, "
            f"avg {summary.average_frequency_ghz:.3f} GHz"
        )


def main() -> None:
    plan = build_plan()
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "sweep"

        print("1. streaming the population sweep to sharded JSONL ...")
        stream_once(directory, plan)

        print("2. simulating a crash: truncating the last shard mid-line ...")
        shard = sorted(directory.glob("shard-*.jsonl"))[-1]
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) - len(data.splitlines(True)[-1]) // 2])

        print("3. resuming: only the interrupted cell re-runs ...")
        stream_once(directory, plan)

        total = len(StreamingResultStore(directory).load())
        print(f"   store holds {total} bit-exact cells across "
              f"{len(list(directory.glob('shard-*.jsonl')))} shard file(s)")


if __name__ == "__main__":
    main()
