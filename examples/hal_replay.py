"""Replay a recorded Android thermal HAL trace through the policy API.

Equivalent CLI::

    repro-usta replay-hal --hal-trace tests/data/hal_dumps --smoke \
        --model linear_regression --policy examples/trip_point_policy.json
    repro-usta hal-compare --hal-trace tests/data/hal_dumps --smoke \
        --model linear_regression

This script does the same three steps in Python: parse the dumps, replay
them through a session, and print the USTA-vs-trip-point comparison.
"""

from pathlib import Path

from repro.analysis import ReproductionContext, hal_comparison, render_hal_comparison
from repro.api.session import open_session
from repro.api.specs import ManagerSpec, PolicySpec
from repro.telemetry import describe_hal_trace, hal_telemetry, load_hal_trace

DUMPS = Path(__file__).resolve().parents[1] / "tests" / "data" / "hal_dumps"


def main() -> None:
    # 1. Parse the recorded dumpsys-thermal captures.
    steps = load_hal_trace(DUMPS)
    print(describe_hal_trace(steps))
    print()

    # 2. Replay them through one trip-point session (no predictor needed).
    telemetry = hal_telemetry(steps)
    session = open_session(PolicySpec(manager=ManagerSpec("trip-point")))
    for sample in telemetry:
        decision = session.feed(sample)
        cap = "-" if decision.level_cap is None else str(decision.level_cap)
        print(
            f"t={sample.time_s:5.1f}s skin={sample.sensor_readings['skin']:5.2f}°C"
            f" -> cap level {cap}"
        )
    print()

    # 3. Score USTA against the trip-point throttler on the same trace.
    context = ReproductionContext.build(
        duration_scale=0.02, model_name="linear_regression"
    )
    points = hal_comparison(context, telemetry)
    print(render_hal_comparison(points))


if __name__ == "__main__":
    main()
