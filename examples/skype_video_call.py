"""Reproduce the paper's headline experiment: the half-hour Skype video call.

This example regenerates the content of Figure 4 (temperature traces under the
baseline ondemand governor and under USTA) plus the Skype column of Table 1,
and prints the traces as a text table.

Run with::

    python examples/skype_video_call.py            # full 30-minute call
    python examples/skype_video_call.py --quick    # 10-minute version
"""

import argparse

from repro.analysis import ReproductionContext, figure4_skype_traces, render_figure4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a shortened 10-minute call")
    parser.add_argument("--limit", type=float, default=37.0, help="skin comfort limit in C")
    parser.add_argument(
        "--train-scale",
        type=float,
        default=1.0,
        help="duration scale for predictor training data collection",
    )
    args = parser.parse_args()

    duration_s = 10 * 60 if args.quick else 30 * 60

    print("building the reproduction context (benchmark replay + predictor training) ...")
    context = ReproductionContext.build(seed=0, duration_scale=args.train_scale)
    print(f"  {context.training_data.num_records} training records, "
          f"deployed model: {context.predictor.model_name}")

    print(f"replaying a {duration_s // 60}-minute Skype call, limit {args.limit:.1f} C ...\n")
    series = figure4_skype_traces(context, duration_s=duration_s, limit_c=args.limit)

    print(render_figure4(series, every_s=max(60.0, duration_s / 12)))
    print()
    print("Table 1, Skype column (this reproduction):")
    print(f"  baseline: max screen {series.baseline.max_screen_temp_c:.1f} C, "
          f"max skin {series.baseline.max_skin_temp_c:.1f} C, "
          f"avg freq {series.baseline.average_frequency_ghz:.2f} GHz")
    print(f"  USTA:     max screen {series.usta.max_screen_temp_c:.1f} C, "
          f"max skin {series.usta.max_skin_temp_c:.1f} C, "
          f"avg freq {series.usta.average_frequency_ghz:.2f} GHz")
    print(f"  (paper:   baseline 40.5 / 42.8 / 1.09, USTA 35.4 / 38.7 / 0.72)")


if __name__ == "__main__":
    main()
